package broker

import (
	"fmt"
	"math/rand"
	"testing"

	"genas/internal/core"
	"genas/internal/event"
	"genas/internal/predicate"
)

// TestShardedBrokerDelivery: a sharded broker delivers exactly the oracle
// match set and keeps Stats/Counters totals identical to a single-shard
// broker fed the same traffic.
func TestShardedBrokerDelivery(t *testing.T) {
	single := newBroker(t, Options{})
	sharded := newBroker(t, Options{Shards: 4})
	if sharded.Shards() != 4 {
		t.Fatalf("Shards() = %d", sharded.Shards())
	}
	if _, ok := sharded.Engine().(*core.Sharded); !ok {
		t.Fatalf("sharded broker engine is %T", sharded.Engine())
	}
	if _, ok := single.Engine().(*core.Engine); !ok {
		t.Fatalf("single broker engine is %T", single.Engine())
	}

	s := single.Schema()
	subsSingle := make(map[predicate.ID]*Subscription)
	subsSharded := make(map[predicate.ID]*Subscription)
	for i := 0; i < 40; i++ {
		expr := fmt.Sprintf("profile(temperature >= %d)", i-20)
		id := predicate.ID(fmt.Sprintf("s%d", i))
		p1 := predicate.MustParse(s, id, expr)
		p2 := predicate.MustParse(s, id, expr)
		sub1, err := single.SubscribeBuffered(p1, 1024)
		if err != nil {
			t.Fatal(err)
		}
		sub2, err := sharded.SubscribeBuffered(p2, 1024)
		if err != nil {
			t.Fatal(err)
		}
		subsSingle[id] = sub1
		subsSharded[id] = sub2
	}

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		vals := map[string]float64{
			"temperature": float64(rng.Intn(80) - 30),
			"humidity":    float64(rng.Intn(100)),
		}
		ev := mustEvent(t, s, vals)
		n1, err := single.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := sharded.Publish(ev.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if n1 != n2 {
			t.Fatalf("event %d: single matched %d, sharded %d", i, n1, n2)
		}
	}

	st1, st2 := single.Stats(), sharded.Stats()
	if st1.Published != st2.Published || st1.Delivered != st2.Delivered ||
		st1.Dropped != st2.Dropped || st1.FilterEvents != st2.FilterEvents {
		t.Errorf("stats diverge: single %+v vs sharded %+v", st1, st2)
	}
	// Per-profile counters agree entry by entry after the shard merge.
	c1, c2 := single.Counters(), sharded.Counters()
	if len(c1) != len(c2) {
		t.Fatalf("counter entries: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("counter %d: %+v vs %+v", i, c1[i], c2[i])
		}
	}
	// Every subscriber saw the same notification count on both brokers.
	for id, sub1 := range subsSingle {
		if got, want := len(subsSharded[id].C()), len(sub1.C()); got != want {
			t.Errorf("sub %s: sharded saw %d, single %d", id, got, want)
		}
	}
	// Quenching still sees all shards.
	if sharded.Quenched(0, s.At(0).Domain.Interval()) {
		t.Error("subscribed region reported quenched")
	}
}

func mustEvent(t *testing.T, s interface {
	N() int
	Index(string) (int, error)
}, values map[string]float64) event.Event {
	t.Helper()
	vals := make([]float64, s.N())
	for name, v := range values {
		i, err := s.Index(name)
		if err != nil {
			t.Fatal(err)
		}
		vals[i] = v
	}
	return event.Event{Vals: vals}
}

// TestPublishBatch: the batch path assigns contiguous sequence numbers in
// slice order, reports per-event match counts identical to per-event
// publishing, and delivers in event order.
func TestPublishBatch(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			b := newBroker(t, Options{Shards: shards})
			oracle := newBroker(t, Options{})
			s := b.Schema()
			for i := 0; i < 20; i++ {
				expr := fmt.Sprintf("profile(humidity >= %d)", i*5)
				id := predicate.ID(fmt.Sprintf("h%d", i))
				if _, err := b.SubscribeBuffered(predicate.MustParse(s, id, expr), 4096); err != nil {
					t.Fatal(err)
				}
				if _, err := oracle.SubscribeBuffered(predicate.MustParse(s, id, expr), 4096); err != nil {
					t.Fatal(err)
				}
			}
			sub, err := b.SubscribeBuffered(predicate.MustParse(s, "all", "profile(temperature >= -30)"), 4096)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := oracle.SubscribeBuffered(predicate.MustParse(s, "all", "profile(temperature >= -30)"), 4096); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(6))
			evs := make([]event.Event, 100)
			var wantCounts []int
			for i := range evs {
				vals := map[string]float64{
					"temperature": float64(rng.Intn(80) - 30),
					"humidity":    float64(rng.Intn(100)),
				}
				evs[i] = mustEvent(t, s, vals)
				n, err := oracle.Publish(evs[i].Clone())
				if err != nil {
					t.Fatal(err)
				}
				wantCounts = append(wantCounts, n)
			}

			counts, err := b.PublishBatch(evs)
			if err != nil {
				t.Fatal(err)
			}
			if len(counts) != len(evs) {
				t.Fatalf("counts = %d", len(counts))
			}
			for i := range counts {
				if counts[i] != wantCounts[i] {
					t.Fatalf("event %d: batch matched %d, oracle %d", i, counts[i], wantCounts[i])
				}
			}
			// The caller's slice is not mutated: stamping happens on a copy.
			for i := range evs {
				if evs[i].Seq != 0 || !evs[i].Time.IsZero() {
					t.Fatalf("event %d mutated in place: seq %d time %v", i, evs[i].Seq, evs[i].Time)
				}
			}
			// The catch-all subscriber received every event, in contiguous
			// slice-order sequence numbers, with times stamped.
			var prev uint64
			for len(sub.C()) > 0 {
				n := <-sub.C()
				if n.Event.Seq != prev+1 {
					t.Fatalf("delivery order: seq %d after %d", n.Event.Seq, prev)
				}
				if n.Event.Time.IsZero() {
					t.Fatalf("seq %d delivered with zero time", n.Event.Seq)
				}
				prev = n.Event.Seq
			}
			if prev != uint64(len(evs)) {
				t.Fatalf("catch-all saw up to seq %d of %d", prev, len(evs))
			}
			// Stats count one published/filtered event per batch element.
			st := b.Stats()
			if st.Published != uint64(len(evs)) || st.FilterEvents != uint64(len(evs)) {
				t.Errorf("stats after batch: %+v", st)
			}

			// Validation and closed-state errors.
			if _, err := b.PublishBatch(nil); err != nil {
				t.Errorf("empty batch: %v", err)
			}
			if _, err := b.PublishBatch([]event.Event{{Vals: []float64{1}}}); err == nil {
				t.Error("arity mismatch must fail")
			}
			b.Close()
			if _, err := b.PublishBatch(evs[:1]); err == nil {
				t.Error("publish batch on closed broker must fail")
			}
		})
	}
}

// TestSubscribeGroupDuplicateInSlice: a group containing the same profile id
// twice must fail with ErrDuplicateSub, not panic during rollback.
func TestSubscribeGroupDuplicateInSlice(t *testing.T) {
	b := newBroker(t, Options{Shards: 3})
	s := b.Schema()
	p1 := predicate.MustParse(s, "dup", "profile(temperature >= 0)")
	p2 := predicate.MustParse(s, "dup", "profile(humidity >= 0)")
	if _, err := b.SubscribeGroup(4, p1, p2); err == nil {
		t.Fatal("duplicate id within the group must fail")
	}
	if b.Stats().Subscriptions != 0 {
		t.Errorf("failed group left subscriptions behind: %+v", b.Stats())
	}
	// The broker stays fully usable afterwards.
	if _, err := b.SubscribeGroup(4, predicate.MustParse(s, "ok", "profile(temperature >= 0)")); err != nil {
		t.Fatal(err)
	}
}
