package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"genas/internal/adaptive"
	"genas/internal/event"
	"genas/internal/predicate"
)

// TestRaceStress runs the full concurrent surface at once — 8 goroutines
// publishing (two of them in batches) while 4 churn subscriptions and the
// adaptive policy restructures per shard — and then checks every stable
// subscriber against a sequential oracle: a subscriber registered before the
// first publish must receive exactly the events its profile matches, no
// losses, no duplicates. Run under -race; the schedule noise is the point.
func TestRaceStress(t *testing.T) {
	const (
		publishers    = 8
		churners      = 4
		eventsPerPub  = 250
		totalEvents   = publishers * eventsPerPub
		stableSubs    = 12
		churnPerGorou = 40
	)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			b := newBroker(t, Options{
				Shards:   shards,
				Adaptive: true,
				// A tiny window and threshold force frequent restructures
				// (value reorders and full rebuilds) during the run.
				Policy: adaptive.Policy{Window: 64, Threshold: 0.01, ReorderAttributes: true, MinHistory: 64},
			})
			s := b.Schema()

			// Stable subscribers: registered up front, buffers sized so the
			// broker can never drop (drops would look like losses).
			stable := make([]*Subscription, stableSubs)
			for i := range stable {
				expr := fmt.Sprintf("profile(temperature >= %d)", i*6-30)
				sub, err := b.SubscribeBuffered(predicate.MustParse(s, predicate.ID(fmt.Sprintf("stable%d", i)), expr), totalEvents)
				if err != nil {
					t.Fatal(err)
				}
				stable[i] = sub
			}

			var wg sync.WaitGroup
			published := make([][]event.Event, publishers)

			for g := 0; g < publishers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000 + g)))
					evs := make([]event.Event, 0, eventsPerPub)
					mk := func() event.Event {
						ev, err := event.New(s, float64(rng.Intn(80)-30), float64(rng.Intn(100)))
						if err != nil {
							panic(err)
						}
						return ev
					}
					if g < 2 {
						// Two publishers use the batched path.
						for done := 0; done < eventsPerPub; {
							n := rng.Intn(16) + 1
							if done+n > eventsPerPub {
								n = eventsPerPub - done
							}
							batch := make([]event.Event, n)
							for i := range batch {
								batch[i] = mk()
							}
							if _, err := b.PublishBatch(batch); err != nil {
								panic(err)
							}
							evs = append(evs, batch...)
							done += n
						}
					} else {
						for i := 0; i < eventsPerPub; i++ {
							ev := mk()
							if _, err := b.Publish(ev); err != nil {
								panic(err)
							}
							// Publish takes the event by value; reconstruct
							// the assigned seq from the broker stats is not
							// possible per event, so match on values instead.
							evs = append(evs, ev)
						}
					}
					published[g] = evs
				}()
			}

			for g := 0; g < churners; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(2000 + g)))
					for i := 0; i < churnPerGorou; i++ {
						id := predicate.ID(fmt.Sprintf("churn%d-%d", g, i))
						expr := fmt.Sprintf("profile(humidity >= %d)", rng.Intn(100))
						sub, err := b.SubscribeBuffered(predicate.MustParse(s, id, expr), 8)
						if err != nil {
							panic(err)
						}
						// Drain a little so the channel close finds a reader
						// sometimes.
						for len(sub.C()) > 4 {
							<-sub.C()
						}
						if err := b.Unsubscribe(id); err != nil {
							panic(err)
						}
					}
				}()
			}

			wg.Wait()

			// Sequential oracle: per stable profile, count the published
			// events it matches (profiles are static, so a value-level count
			// is exact — every publisher's event either matched while the
			// subscriber existed, which is always, or never).
			st := b.Stats()
			if st.Published != totalEvents {
				t.Fatalf("published %d of %d", st.Published, totalEvents)
			}
			for i, sub := range stable {
				if d := sub.Dropped(); d != 0 {
					t.Fatalf("stable%d dropped %d notifications: its buffer was sized to hold everything", i, d)
				}
				want := 0
				p := sub.Profile()
				for _, evs := range published {
					for _, ev := range evs {
						if p.Matches(ev.Vals) {
							want++
						}
					}
				}
				got := len(sub.C())
				if got != want {
					t.Errorf("stable%d: received %d notifications, oracle says %d", i, got, want)
				}
				// No duplicate seqs among the received notifications.
				seen := make(map[uint64]bool, got)
				for len(sub.C()) > 0 {
					n := <-sub.C()
					if seen[n.Event.Seq] {
						t.Fatalf("stable%d: duplicate notification for seq %d", i, n.Event.Seq)
					}
					seen[n.Event.Seq] = true
					if !p.Matches(n.Event.Vals) {
						t.Fatalf("stable%d: notified for non-matching event %v", i, n.Event.Vals)
					}
				}
			}
			if b.Adaptor().Restructures() == 0 {
				t.Error("adaptive policy never restructured during the stress run")
			}
		})
	}
}

// TestChurnRaceStress aims the stress harness at the churn path specifically:
// Block-policy subscribers with tiny buffers so publishers park on full
// channels, churner goroutines subscribing and unsubscribing Block-policy
// profiles mid-flight (an unsubscribe must release any delivery parked on
// that subscription), and the adaptive policy swapping index snapshots under
// all of it. Every stable subscriber is drained concurrently and checked
// against the same sequential oracle as TestRaceStress: exact match counts,
// no losses, no duplicate seqs. Run under -race; the interleavings between
// snapshot swaps, parked Block sends and subscription teardown are the point.
func TestChurnRaceStress(t *testing.T) {
	const (
		publishers   = 8
		churners     = 4
		eventsPerPub = 200
		totalEvents  = publishers * eventsPerPub
		stableSubs   = 8
		churnPerG    = 40
	)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			b := newBroker(t, Options{
				Shards:   shards,
				Adaptive: true,
				Policy:   adaptive.Policy{Window: 64, Threshold: 0.01, ReorderAttributes: true, MinHistory: 64},
			})
			s := b.Schema()

			// Stable Block-policy subscribers: buffers far smaller than the
			// event volume, so correctness depends on backpressure (a parked
			// publisher resuming when the drainer catches up), not on buffer
			// headroom. Block never drops, so the drained set must equal the
			// oracle exactly.
			stable := make([]*Subscription, stableSubs)
			received := make([][]event.Event, stableSubs)
			var drain sync.WaitGroup
			for i := range stable {
				expr := fmt.Sprintf("profile(temperature >= %d)", i*8-30)
				sub, err := b.SubscribeWith(
					predicate.MustParse(s, predicate.ID(fmt.Sprintf("bstable%d", i)), expr),
					SubOptions{Buffer: 4, Policy: Block},
				)
				if err != nil {
					t.Fatal(err)
				}
				stable[i] = sub
				drain.Add(1)
				go func(i int, sub *Subscription) {
					defer drain.Done()
					for n := range sub.C() {
						received[i] = append(received[i], n.Event)
					}
				}(i, sub)
			}

			var wg sync.WaitGroup
			published := make([][]event.Event, publishers)
			for g := 0; g < publishers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(4000 + g)))
					evs := make([]event.Event, 0, eventsPerPub)
					mk := func() event.Event {
						ev, err := event.New(s, float64(rng.Intn(80)-30), float64(rng.Intn(100)))
						if err != nil {
							panic(err)
						}
						return ev
					}
					if g < 2 {
						for done := 0; done < eventsPerPub; {
							n := rng.Intn(16) + 1
							if done+n > eventsPerPub {
								n = eventsPerPub - done
							}
							batch := make([]event.Event, n)
							for i := range batch {
								batch[i] = mk()
							}
							if _, err := b.PublishBatch(batch); err != nil {
								panic(err)
							}
							evs = append(evs, batch...)
							done += n
						}
					} else {
						for i := 0; i < eventsPerPub; i++ {
							ev := mk()
							if _, err := b.Publish(ev); err != nil {
								panic(err)
							}
							evs = append(evs, ev)
						}
					}
					published[g] = evs
				}(g)
			}

			// Churners register Block-policy subscriptions they mostly never
			// drain: publishers park on the full buffers and only the
			// unsubscribe releases them — the teardown fence (end, retire,
			// channel close) races live parked sends on every iteration.
			for g := 0; g < churners; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(5000 + g)))
					for i := 0; i < churnPerG; i++ {
						id := predicate.ID(fmt.Sprintf("bchurn%d-%d", g, i))
						expr := fmt.Sprintf("profile(humidity >= %d)", rng.Intn(100))
						sub, err := b.SubscribeWith(predicate.MustParse(s, id, expr), SubOptions{Buffer: 2, Policy: Block})
						if err != nil {
							panic(err)
						}
						if rng.Intn(2) == 0 {
							// Sometimes drain one notification so the
							// unsubscribe races in-flight sends as well as
							// parked ones.
							select {
							case <-sub.C():
							default:
							}
						}
						if err := b.Unsubscribe(id); err != nil {
							panic(err)
						}
					}
				}(g)
			}

			wg.Wait()
			// Retire the stable subscriptions so their channels close and the
			// drainers finish.
			for i := range stable {
				if err := b.Unsubscribe(predicate.ID(fmt.Sprintf("bstable%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			drain.Wait()

			st := b.Stats()
			if st.Published != totalEvents {
				t.Fatalf("published %d of %d", st.Published, totalEvents)
			}
			for i, sub := range stable {
				if d := sub.Dropped(); d != 0 {
					t.Fatalf("bstable%d dropped %d notifications: Block policy must never drop", i, d)
				}
				p := sub.Profile()
				want := 0
				for _, evs := range published {
					for _, ev := range evs {
						if p.Matches(ev.Vals) {
							want++
						}
					}
				}
				if got := len(received[i]); got != want {
					t.Errorf("bstable%d: received %d notifications, oracle says %d", i, got, want)
				}
				seen := make(map[uint64]bool, len(received[i]))
				for _, ev := range received[i] {
					if seen[ev.Seq] {
						t.Fatalf("bstable%d: duplicate notification for seq %d", i, ev.Seq)
					}
					seen[ev.Seq] = true
					if !p.Matches(ev.Vals) {
						t.Fatalf("bstable%d: notified for non-matching event %v", i, ev.Vals)
					}
				}
			}
			if b.Adaptor().Restructures() == 0 {
				t.Error("adaptive policy never restructured during the stress run")
			}
		})
	}
}
