package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"genas/internal/adaptive"
	"genas/internal/event"
	"genas/internal/predicate"
)

// TestRaceStress runs the full concurrent surface at once — 8 goroutines
// publishing (two of them in batches) while 4 churn subscriptions and the
// adaptive policy restructures per shard — and then checks every stable
// subscriber against a sequential oracle: a subscriber registered before the
// first publish must receive exactly the events its profile matches, no
// losses, no duplicates. Run under -race; the schedule noise is the point.
func TestRaceStress(t *testing.T) {
	const (
		publishers    = 8
		churners      = 4
		eventsPerPub  = 250
		totalEvents   = publishers * eventsPerPub
		stableSubs    = 12
		churnPerGorou = 40
	)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			b := newBroker(t, Options{
				Shards:   shards,
				Adaptive: true,
				// A tiny window and threshold force frequent restructures
				// (value reorders and full rebuilds) during the run.
				Policy: adaptive.Policy{Window: 64, Threshold: 0.01, ReorderAttributes: true, MinHistory: 64},
			})
			s := b.Schema()

			// Stable subscribers: registered up front, buffers sized so the
			// broker can never drop (drops would look like losses).
			stable := make([]*Subscription, stableSubs)
			for i := range stable {
				expr := fmt.Sprintf("profile(temperature >= %d)", i*6-30)
				sub, err := b.SubscribeBuffered(predicate.MustParse(s, predicate.ID(fmt.Sprintf("stable%d", i)), expr), totalEvents)
				if err != nil {
					t.Fatal(err)
				}
				stable[i] = sub
			}

			var wg sync.WaitGroup
			published := make([][]event.Event, publishers)

			for g := 0; g < publishers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000 + g)))
					evs := make([]event.Event, 0, eventsPerPub)
					mk := func() event.Event {
						ev, err := event.New(s, float64(rng.Intn(80)-30), float64(rng.Intn(100)))
						if err != nil {
							panic(err)
						}
						return ev
					}
					if g < 2 {
						// Two publishers use the batched path.
						for done := 0; done < eventsPerPub; {
							n := rng.Intn(16) + 1
							if done+n > eventsPerPub {
								n = eventsPerPub - done
							}
							batch := make([]event.Event, n)
							for i := range batch {
								batch[i] = mk()
							}
							if _, err := b.PublishBatch(batch); err != nil {
								panic(err)
							}
							evs = append(evs, batch...)
							done += n
						}
					} else {
						for i := 0; i < eventsPerPub; i++ {
							ev := mk()
							if _, err := b.Publish(ev); err != nil {
								panic(err)
							}
							// Publish takes the event by value; reconstruct
							// the assigned seq from the broker stats is not
							// possible per event, so match on values instead.
							evs = append(evs, ev)
						}
					}
					published[g] = evs
				}()
			}

			for g := 0; g < churners; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(2000 + g)))
					for i := 0; i < churnPerGorou; i++ {
						id := predicate.ID(fmt.Sprintf("churn%d-%d", g, i))
						expr := fmt.Sprintf("profile(humidity >= %d)", rng.Intn(100))
						sub, err := b.SubscribeBuffered(predicate.MustParse(s, id, expr), 8)
						if err != nil {
							panic(err)
						}
						// Drain a little so the channel close finds a reader
						// sometimes.
						for len(sub.C()) > 4 {
							<-sub.C()
						}
						if err := b.Unsubscribe(id); err != nil {
							panic(err)
						}
					}
				}()
			}

			wg.Wait()

			// Sequential oracle: per stable profile, count the published
			// events it matches (profiles are static, so a value-level count
			// is exact — every publisher's event either matched while the
			// subscriber existed, which is always, or never).
			st := b.Stats()
			if st.Published != totalEvents {
				t.Fatalf("published %d of %d", st.Published, totalEvents)
			}
			for i, sub := range stable {
				if d := sub.Dropped(); d != 0 {
					t.Fatalf("stable%d dropped %d notifications: its buffer was sized to hold everything", i, d)
				}
				want := 0
				p := sub.Profile()
				for _, evs := range published {
					for _, ev := range evs {
						if p.Matches(ev.Vals) {
							want++
						}
					}
				}
				got := len(sub.C())
				if got != want {
					t.Errorf("stable%d: received %d notifications, oracle says %d", i, got, want)
				}
				// No duplicate seqs among the received notifications.
				seen := make(map[uint64]bool, got)
				for len(sub.C()) > 0 {
					n := <-sub.C()
					if seen[n.Event.Seq] {
						t.Fatalf("stable%d: duplicate notification for seq %d", i, n.Event.Seq)
					}
					seen[n.Event.Seq] = true
					if !p.Matches(n.Event.Vals) {
						t.Fatalf("stable%d: notified for non-matching event %v", i, n.Event.Vals)
					}
				}
			}
			if b.Adaptor().Restructures() == 0 {
				t.Error("adaptive policy never restructured during the stress run")
			}
		})
	}
}
