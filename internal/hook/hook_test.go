package hook_test

import (
	"testing"

	"genas"
	"genas/internal/hook"
)

// The hook accessors are installed by package genas at init time; importing
// genas above is what arms them. These tests pin the contract the wire
// server and experiment harness rely on: the accessors are non-nil after
// init, resolve a *genas.Service to its broker and defaults, and panic on
// anything else.

func newService(t *testing.T, opts ...genas.Option) *genas.Service {
	t.Helper()
	sch := genas.MustSchema(
		genas.Attr("temperature", genas.MustNumericDomain(-30, 50)),
		genas.Attr("humidity", genas.MustNumericDomain(0, 100)),
	)
	svc, err := genas.NewService(sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func TestAccessorsInstalled(t *testing.T) {
	if hook.BrokerOf == nil || hook.DefaultsOf == nil {
		t.Fatal("hook accessors not installed by genas init")
	}
}

func TestBrokerOf(t *testing.T) {
	svc := newService(t)
	brk := hook.BrokerOf(svc)
	if brk == nil {
		t.Fatal("BrokerOf returned nil for a live service")
	}
	// The broker is the service's own: publishing through the facade is
	// visible in the broker's stats.
	if _, err := svc.PublishValues(20, 50); err != nil {
		t.Fatal(err)
	}
	if got := brk.Stats().Published; got != 1 {
		t.Fatalf("broker saw %d published events, want 1", got)
	}
}

func TestDefaultsOf(t *testing.T) {
	bare := newService(t)
	if d := hook.DefaultsOf(bare); d != nil {
		t.Fatalf("DefaultsOf = %v for a service without WithDefaults, want nil", d)
	}

	svc := newService(t, genas.WithDefaults(map[string]float64{"humidity": 40}))
	if d := hook.DefaultsOf(svc); d == nil {
		t.Fatal("DefaultsOf returned nil for a service configured with WithDefaults")
	}
}

func TestPanicsOnForeignValue(t *testing.T) {
	for name, call := range map[string]func(){
		"BrokerOf":   func() { hook.BrokerOf(42) },
		"DefaultsOf": func() { hook.DefaultsOf("not a service") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on a non-service value", name)
				}
			}()
			call()
		})
	}
}
