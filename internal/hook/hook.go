// Package hook bridges the sealed public facade to in-module integration
// points. The v1 surface deliberately has no Service.Broker() escape hatch;
// the wire server and the experiment harness still need the underlying
// broker, so package genas installs narrow accessors here at init time.
// The package is internal: external callers cannot reach it, which is the
// point.
package hook

import (
	"genas/internal/broker"
	"genas/internal/event"
)

// Installed by package genas in an init function. The argument is a
// *genas.Service (typed any to avoid the import cycle); passing anything
// else panics, which is the contract violation it looks like.
var (
	// BrokerOf returns the broker inside a *genas.Service.
	BrokerOf func(service any) *broker.Broker
	// DefaultsOf returns the service's configured event-attribute defaults
	// (nil when WithDefaults was not used).
	DefaultsOf func(service any) *event.Defaults
)
