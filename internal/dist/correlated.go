package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadCorrelated reports invalid mixture construction.
var ErrBadCorrelated = errors.New("dist: invalid correlated mixture")

// correlated is a mixture of product distributions over n attributes:
// component k is drawn with probability weights[k] and then every attribute
// samples independently from rows[k]. Mixtures of products induce
// correlation between attributes even though each component is independent —
// the standard counterexample to the analytic model's independence
// assumption.
type correlated struct {
	weights []float64 // normalized
	cum     []float64 // len(weights)+1 cumulative weights for sampling
	rows    [][]Dist
}

// NewCorrelated builds an n-attribute joint distribution as a weighted
// mixture of independent product components. components[k][j] is attribute
// j's distribution inside mixture component k; all rows must have the same
// width and agree column-wise on the attribute domain. The returned Dist
// behaves as the first attribute's marginal for Mass/Sample; use Marginal
// and SampleEvent for the joint view.
func NewCorrelated(weights []float64, components [][]Dist) (Dist, error) {
	if len(components) == 0 {
		return Dist{}, fmt.Errorf("%w: no components", ErrBadCorrelated)
	}
	if len(weights) != len(components) {
		return Dist{}, fmt.Errorf("%w: %d weights for %d components",
			ErrBadCorrelated, len(weights), len(components))
	}
	width := len(components[0])
	if width == 0 {
		return Dist{}, fmt.Errorf("%w: empty component row", ErrBadCorrelated)
	}
	total := 0.0
	for k, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return Dist{}, fmt.Errorf("%w: weight[%d] = %g", ErrBadCorrelated, k, w)
		}
		total += w
	}
	if total <= 0 {
		return Dist{}, fmt.Errorf("%w: weights sum to %g", ErrBadCorrelated, total)
	}
	for k, row := range components {
		if len(row) != width {
			return Dist{}, fmt.Errorf("%w: row %d has %d attributes, want %d",
				ErrBadCorrelated, k, len(row), width)
		}
		for j, d := range row {
			if d.shape == nil {
				return Dist{}, fmt.Errorf("%w: component[%d][%d] has no shape", ErrBadCorrelated, k, j)
			}
			if d.joint != nil {
				return Dist{}, fmt.Errorf("%w: component[%d][%d] is itself correlated", ErrBadCorrelated, k, j)
			}
			ref := components[0][j].dom
			if d.dom.Kind() != ref.Kind() || d.dom.Lo() != ref.Lo() || d.dom.Hi() != ref.Hi() ||
				!sameLabels(d.dom.Labels(), ref.Labels()) {
				return Dist{}, fmt.Errorf("%w: attribute %d domain mismatch (%s vs %s)",
					ErrBadCorrelated, j, d.dom, ref)
			}
		}
	}
	c := &correlated{
		weights: make([]float64, len(weights)),
		cum:     make([]float64, len(weights)+1),
		rows:    make([][]Dist, len(components)),
	}
	for k, w := range weights {
		c.weights[k] = w / total
		c.cum[k+1] = c.cum[k] + c.weights[k]
	}
	c.cum[len(weights)] = 1
	for k, row := range components {
		c.rows[k] = append([]Dist(nil), row...)
	}
	joint := c.marginal(0)
	joint.joint = c
	return joint, nil
}

// sameLabels reports whether two categorical label lists agree (both nil for
// non-categorical domains). Size-equal categorical domains with different
// encodings must not silently mix.
func sameLabels(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// marginal builds attribute j's marginal: the weight-mixture of the
// component shapes bound to the shared column domain.
func (c *correlated) marginal(j int) Dist {
	shapes := make([]Shape, len(c.rows))
	for k, row := range c.rows {
		shapes[k] = row[j].shape
	}
	return Dist{
		shape: &mixShape{
			name:    fmt.Sprintf("mix/%d", j),
			weights: c.weights,
			shapes:  shapes,
		},
		dom: c.rows[0][j].dom,
	}
}

// Marginal returns attribute i's marginal distribution. On a non-correlated
// Dist it returns the distribution itself (index 0 of a 1-attribute joint).
func (d Dist) Marginal(i int) Dist {
	if d.joint == nil {
		return Dist{shape: d.shape, dom: d.dom}
	}
	return d.joint.marginal(i)
}

// Attrs returns the joint width: 1 for plain distributions.
func (d Dist) Attrs() int {
	if d.joint == nil {
		return 1
	}
	return len(d.joint.rows[0])
}

// SampleEvent draws one full event vector: a mixture component is selected
// by weight, then every attribute samples independently from that
// component's row. For a plain Dist it returns a single-element vector.
func (d Dist) SampleEvent(rng *rand.Rand) []float64 {
	if d.joint == nil {
		return []float64{d.Sample(rng)}
	}
	u := rng.Float64()
	k := 0
	for k < len(d.joint.rows)-1 && u >= d.joint.cum[k+1] {
		k++
	}
	row := d.joint.rows[k]
	out := make([]float64, len(row))
	for j, dj := range row {
		out[j] = dj.Sample(rng)
	}
	return out
}

// mixShape is the weighted mixture of several shapes: the marginal of a
// correlated joint. Its CDF is the weight-average of the component CDFs.
type mixShape struct {
	name    string
	weights []float64
	shapes  []Shape
}

// Name identifies the mixture.
func (m *mixShape) Name() string { return m.name }

// CDF is the convex combination of the component CDFs.
func (m *mixShape) CDF(x float64) float64 {
	sum := 0.0
	for k, s := range m.shapes {
		sum += m.weights[k] * s.CDF(x)
	}
	return sum
}

// massSpan is the convex combination of the components' exact cell masses.
func (m *mixShape) massSpan(x1, width float64) float64 {
	sum := 0.0
	for k, s := range m.shapes {
		sum += m.weights[k] * spanMass(s, x1, width)
	}
	return sum
}
