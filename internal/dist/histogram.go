package dist

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"genas/internal/schema"
)

// ErrBadHistogram reports invalid histogram construction.
var ErrBadHistogram = errors.New("dist: invalid histogram")

// Histogram is the adaptive component's event history for one attribute: an
// equal-width bin counter over the domain. Observe is lock-free and safe for
// concurrent use with Snapshot, so the hot publish path never serializes on
// statistics bookkeeping.
type Histogram struct {
	dom    schema.Domain
	counts []int64
	total  int64
}

// NewHistogram creates a histogram with the given number of equal-width bins
// over the domain.
func NewHistogram(dom schema.Domain, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("%w: bins = %d", ErrBadHistogram, bins)
	}
	if dom.Kind() == 0 {
		return nil, fmt.Errorf("%w: unset domain", ErrBadHistogram)
	}
	return &Histogram{dom: dom, counts: make([]int64, bins)}, nil
}

// Bins returns the bin count.
func (h *Histogram) Bins() int { return len(h.counts) }

// Observe counts one value. Values outside the domain clamp to the nearest
// bin and NaN is dropped, so a misbehaving publisher cannot corrupt the
// history.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	x := (v - h.dom.Lo()) / h.dom.Size()
	// Clamp in float space: converting an out-of-range float (±Inf, or a
	// huge outlier) to int is implementation-defined in Go.
	f := x * float64(len(h.counts))
	if !(f > 0) {
		f = 0
	}
	if f >= float64(len(h.counts)) {
		f = float64(len(h.counts) - 1)
	}
	bin := int(f)
	atomic.AddInt64(&h.counts[bin], 1)
	atomic.AddInt64(&h.total, 1)
}

// N returns the number of observed values.
func (h *Histogram) N() uint64 {
	return uint64(atomic.LoadInt64(&h.total))
}

// Snapshot freezes the current counts into a normalized step shape. With no
// history yet it returns the uniform shape — the same prior the adaptive
// component starts from, so an empty histogram never reports drift.
func (h *Histogram) Snapshot() Shape {
	weights := make([]float64, len(h.counts))
	total := 0.0
	for i := range h.counts {
		c := float64(atomic.LoadInt64(&h.counts[i]))
		weights[i] = c
		total += c
	}
	if total <= 0 {
		return UniformShape{}
	}
	cuts := make([]float64, len(weights)+1)
	for i := range cuts {
		cuts[i] = float64(i) / float64(len(weights))
	}
	s, err := NewStepAt("hist", cuts, weights)
	if err != nil {
		// Unreachable: cuts and weights are valid by construction.
		return UniformShape{}
	}
	return s
}

// Shape is Snapshot; it exists so histograms satisfy the same reading
// pattern as Dist.
func (h *Histogram) Shape() Shape { return h.Snapshot() }

// Reset clears all counts.
func (h *Histogram) Reset() {
	for i := range h.counts {
		atomic.StoreInt64(&h.counts[i], 0)
	}
	atomic.StoreInt64(&h.total, 0)
}
