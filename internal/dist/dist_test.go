package dist

import (
	"math"
	"math/rand"
	"testing"

	"genas/internal/schema"
)

func numDom(t *testing.T, lo, hi float64) schema.Domain {
	t.Helper()
	d, err := schema.NewNumericDomain(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func intDom(t *testing.T, lo, hi int) schema.Domain {
	t.Helper()
	d, err := schema.NewIntegerDomain(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// testDomains returns one domain per kind, with asymmetric bounds so
// normalization bugs cannot hide.
func testDomains(t *testing.T) []schema.Domain {
	t.Helper()
	cat, err := schema.NewCategoricalDomain("a", "b", "c", "d", "e")
	if err != nil {
		t.Fatal(err)
	}
	return []schema.Domain{
		numDom(t, -30, 50),
		intDom(t, 0, 99),
		intDom(t, -5, 14),
		cat,
	}
}

// TestFullDomainMassOne: every catalog shape integrates to 1 over every
// domain kind.
func TestFullDomainMassOne(t *testing.T) {
	doms := testDomains(t)
	for _, name := range Names() {
		sh, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, dom := range doms {
			d := New(sh, dom)
			if m := d.Mass(dom.Interval()); math.Abs(m-1) > 1e-9 {
				t.Errorf("%s over %s: full mass = %g", name, dom, m)
			}
		}
	}
}

// TestPointMassesSumToOne: on integer domains the point masses of all values
// partition the total mass.
func TestPointMassesSumToOne(t *testing.T) {
	dom := intDom(t, 0, 99)
	for _, name := range []string{"equal", "gauss", "falling", "95% low", "d34", "d39"} {
		sh, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d := New(sh, dom)
		sum := 0.0
		for v := 0; v <= 99; v++ {
			m := d.Mass(schema.Point(float64(v)))
			if m < 0 {
				t.Fatalf("%s: negative point mass at %d", name, v)
			}
			sum += m
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: point masses sum to %g", name, sum)
		}
	}
}

// TestUniformCellMassesExactlyEqual: equal-width cells of the uniform and
// peak distributions carry bit-identical mass, so the selectivity measures
// see exact ties and fall back to the natural value order.
func TestUniformCellMassesExactlyEqual(t *testing.T) {
	dom := intDom(t, 0, 99)
	for _, name := range []string{"equal", "90% high", "95% low", "d1"} {
		sh, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d := New(sh, dom)
		// Compare within regions covered by a single step segment.
		ref := d.Mass(schema.Point(20))
		for v := 21; v <= 29; v++ {
			if m := d.Mass(schema.Point(float64(v))); m != ref {
				t.Errorf("%s: cell %d mass %v != cell 20 mass %v", name, v, m, ref)
			}
		}
	}
}

// TestMassOpenClosedBounds: integer-domain masses respect open endpoints.
func TestMassOpenClosedBounds(t *testing.T) {
	d := New(UniformShape{}, intDom(t, 0, 9))
	cell := 0.1
	cases := []struct {
		iv   schema.Interval
		want float64
	}{
		{schema.Closed(2, 4), 3 * cell},
		{schema.CO(2, 4), 2 * cell},
		{schema.OC(2, 4), 2 * cell},
		{schema.Open(2, 4), 1 * cell},
		{schema.Point(7), cell},
		{schema.Open(3, 4), 0},
		{schema.Closed(-5, 100), 1},
		{schema.Closed(11, 20), 0},
	}
	for _, c := range cases {
		if got := d.Mass(c.iv); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Mass(%s) = %g, want %g", c.iv, got, c.want)
		}
	}
}

// TestNumericPointsAtomless: numeric-domain points carry no mass.
func TestNumericPointsAtomless(t *testing.T) {
	d := New(Gauss(), numDom(t, 0, 100))
	if m := d.Mass(schema.Point(50)); m != 0 {
		t.Errorf("numeric point mass = %g", m)
	}
	closed := d.Mass(schema.Closed(20, 60))
	open := d.Mass(schema.Open(20, 60))
	if math.Abs(closed-open) > 1e-12 {
		t.Errorf("open/closed differ on numeric domain: %g vs %g", closed, open)
	}
}

// TestSampleConvergesToMass: empirical frequencies of Sample converge to
// Mass — the property that makes the analytic TV4 scenario a valid
// substitute for event posting. Checked as a total-variation bound on a
// decile discretization, for representative shapes over numeric and integer
// domains.
func TestSampleConvergesToMass(t *testing.T) {
	shapes := []string{"equal", "gauss", "relgauss-low", "falling", "95% low", "95% high", "d34", "d39", "d40"}
	doms := []schema.Domain{numDom(t, -30, 50), intDom(t, 0, 99)}
	rng := rand.New(rand.NewSource(99))
	const n = 60000
	for _, name := range shapes {
		sh, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, dom := range doms {
			d := New(sh, dom)
			const bins = 10
			counts := make([]float64, bins)
			for i := 0; i < n; i++ {
				v := d.Sample(rng)
				if !dom.Contains(v) {
					t.Fatalf("%s over %s: sample %v outside domain", name, dom, v)
				}
				x := (v - dom.Lo()) / dom.Size()
				b := int(x * bins)
				if b >= bins {
					b = bins - 1
				}
				counts[b]++
			}
			tv := 0.0
			span := dom.Size()
			for b := 0; b < bins; b++ {
				lo := dom.Lo() + float64(b)/bins*span
				hi := dom.Lo() + float64(b+1)/bins*span
				var want float64
				if dom.Kind() == schema.KindNumeric {
					want = d.Mass(schema.CO(lo, hi))
					if b == bins-1 {
						want = d.Mass(schema.Closed(lo, hi))
					}
				} else {
					want = d.Mass(schema.CO(math.Ceil(lo), math.Ceil(hi)))
					if b == bins-1 {
						want = d.Mass(schema.Closed(math.Ceil(lo), dom.Hi()))
					}
				}
				tv += math.Abs(counts[b]/n - want)
			}
			tv /= 2
			if tv > 0.015 {
				t.Errorf("%s over %s: empirical TV from Mass = %.4f", name, dom, tv)
			}
		}
	}
}

// TestSampleIntegerDomainsIntegral: integer and categorical domains sample
// integral codes only.
func TestSampleIntegerDomainsIntegral(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cat, err := schema.NewCategoricalDomain("x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	for _, dom := range []schema.Domain{intDom(t, -5, 14), cat} {
		d := New(Gauss(), dom)
		for i := 0; i < 2000; i++ {
			v := d.Sample(rng)
			if v != math.Trunc(v) || !dom.Contains(v) {
				t.Fatalf("sample %v not an in-domain code of %s", v, dom)
			}
		}
	}
}

// TestZeroDist: the zero value is inert.
func TestZeroDist(t *testing.T) {
	var d Dist
	if m := d.Mass(schema.Closed(0, 1)); m != 0 {
		t.Errorf("zero dist mass = %g", m)
	}
	if s := d.Sample(rand.New(rand.NewSource(1))); s != 0 {
		t.Errorf("zero dist sample = %g", s)
	}
	if d.Shape() != nil {
		t.Error("zero dist has a shape")
	}
}

// TestQuantileMonotone: the generic sampler's inverse CDF is monotone and
// consistent with the CDF for both analytic and bisection paths.
func TestQuantileMonotone(t *testing.T) {
	shapes := []Shape{
		UniformShape{}, Gauss(), RelocatedGauss(0.25), fallingShape{},
		PeakLow(0.95), mustByName(t, "d17"), mustByName(t, "relgauss-low"),
	}
	for _, sh := range shapes {
		prev := 0.0
		for i := 0; i <= 100; i++ {
			u := float64(i) / 100
			x := quantile(sh, u)
			if x < prev-1e-12 {
				t.Fatalf("%s: quantile not monotone at u=%g", sh.Name(), u)
			}
			prev = x
			if got := sh.CDF(x); math.Abs(got-u) > 1e-6 && u > 0 && u < 1 {
				t.Fatalf("%s: CDF(Quantile(%g)) = %g", sh.Name(), u, got)
			}
		}
	}
}

func mustByName(t *testing.T, name string) Shape {
	t.Helper()
	sh, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}
