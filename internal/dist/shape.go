package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Shape is a probability distribution over the normalized domain [0, 1],
// described by its cumulative distribution function. Implementations must be
// monotone with CDF(0) = 0 and CDF(1) = 1; callers may pass arguments outside
// [0, 1], which clamp.
type Shape interface {
	// Name identifies the shape in the catalog and in experiment tables.
	Name() string
	// CDF returns the cumulative probability mass on [0, x].
	CDF(x float64) float64
}

// quantiler is implemented by shapes with an analytic inverse CDF; the
// generic sampler falls back to bisection otherwise.
type quantiler interface {
	Quantile(u float64) float64
}

// spanMasser is implemented by shapes that can report the mass of
// [x1, x1+width] exactly in terms of the width. Differencing CDF values
// poisons equal-width cells with ~1 ulp of noise ((v+1)/d − v/d is not
// constant in floating point), which would turn the selectivity measures'
// mass ties into a pseudo-random permutation; the width-based path keeps
// equal cells exactly equal so ordering falls back to the paper's "natural
// order of the values" tiebreak.
type spanMasser interface {
	massSpan(x1, width float64) float64
}

// spanMass returns the mass of [x1, x1+width], using the shape's exact
// width-based accounting when available.
func spanMass(s Shape, x1, width float64) float64 {
	if width <= 0 {
		return 0
	}
	x1 = clamp01(x1)
	if sm, ok := s.(spanMasser); ok {
		m := sm.massSpan(x1, width)
		if m < 0 {
			return 0
		}
		return m
	}
	m := s.CDF(clamp01(x1+width)) - s.CDF(x1)
	if m < 0 {
		return 0
	}
	return m
}

// Errors reported by shape construction and catalog lookup.
var (
	ErrBadStep     = errors.New("dist: invalid step distribution")
	ErrUnknownDist = errors.New("dist: unknown distribution name")
)

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// MassOn returns the probability mass of the shape on the normalized
// interval [lo, hi] ⊆ [0, 1].
func MassOn(s Shape, lo, hi float64) float64 {
	lo, hi = clamp01(lo), clamp01(hi)
	if hi <= lo {
		return 0
	}
	m := s.CDF(hi) - s.CDF(lo)
	if m < 0 {
		return 0
	}
	return m
}

// TotalVariation returns the total-variation distance between two shapes on
// a common equal-width discretization into bins cells. The result is in
// [0, 1]; identical shapes yield exactly 0.
func TotalVariation(a, b Shape, bins int) float64 {
	if bins < 1 {
		bins = 1
	}
	sum := 0.0
	for i := 0; i < bins; i++ {
		lo := float64(i) / float64(bins)
		hi := float64(i+1) / float64(bins)
		sum += math.Abs(MassOn(a, lo, hi) - MassOn(b, lo, hi))
	}
	return clamp01(sum / 2)
}

// quantile inverts a shape's CDF: it returns x with CDF(x) = u, preferring
// the shape's analytic inverse and falling back to bisection (the CDF is
// monotone, so 52 halvings pin x to full float precision).
func quantile(s Shape, u float64) float64 {
	u = clamp01(u)
	if q, ok := s.(quantiler); ok {
		return clamp01(q.Quantile(u))
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 52; i++ {
		mid := (lo + hi) / 2
		if s.CDF(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// --- Uniform ---------------------------------------------------------------------

// UniformShape is the equal distribution: every value of the domain is
// equally probable (catalog name "equal").
type UniformShape struct{}

// Name returns "equal".
func (UniformShape) Name() string { return "equal" }

// CDF of the uniform distribution is the identity on [0, 1].
func (UniformShape) CDF(x float64) float64 { return clamp01(x) }

// Quantile of the uniform distribution is the identity.
func (UniformShape) Quantile(u float64) float64 { return clamp01(u) }

// massSpan of the uniform distribution is the width itself, so equal-width
// cells carry exactly equal mass.
func (UniformShape) massSpan(x1, width float64) float64 {
	return math.Min(width, 1-x1)
}

// --- Step distributions ----------------------------------------------------------

// stepShape is piecewise-uniform: weights[i] of the total mass spreads
// uniformly over [cuts[i], cuts[i+1]). Step shapes carry exact masses on
// their cut positions, which the paper's worked examples rely on.
type stepShape struct {
	name string
	cuts []float64 // len k+1, ascending, cuts[0]=0, cuts[k]=1
	w    []float64 // len k, normalized segment weights
	cum  []float64 // len k+1, cum[0]=0, cum[k]=1
}

// NewStepAt builds a step distribution over the normalized domain. cuts must
// be strictly ascending, spanning 0 to 1, with len(cuts) == len(weights)+1;
// weights must be non-negative, finite, with positive sum (they are
// normalized internally).
func NewStepAt(name string, cuts []float64, weights []float64) (Shape, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrBadStep)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("%w: no weights", ErrBadStep)
	}
	if len(cuts) != len(weights)+1 {
		return nil, fmt.Errorf("%w: %d cuts for %d weights (want %d)",
			ErrBadStep, len(cuts), len(weights), len(weights)+1)
	}
	const eps = 1e-9
	if math.Abs(cuts[0]) > eps || math.Abs(cuts[len(cuts)-1]-1) > eps {
		return nil, fmt.Errorf("%w: cuts must span [0,1], got [%g,%g]",
			ErrBadStep, cuts[0], cuts[len(cuts)-1])
	}
	// Snap the endpoints before the ascending check so near-boundary inputs
	// cannot collapse a segment after validation.
	snapped := append([]float64(nil), cuts...)
	snapped[0], snapped[len(snapped)-1] = 0, 1
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: weight[%d] = %g", ErrBadStep, i, w)
		}
		if snapped[i+1] <= snapped[i] {
			return nil, fmt.Errorf("%w: cuts not ascending at %d (%g, %g)",
				ErrBadStep, i, cuts[i], cuts[i+1])
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: weights sum to %g", ErrBadStep, total)
	}
	s := &stepShape{name: name, cuts: snapped}
	s.w = make([]float64, len(weights))
	s.cum = make([]float64, len(cuts))
	for i, w := range weights {
		s.w[i] = w / total
		s.cum[i+1] = s.cum[i] + s.w[i]
	}
	s.cum[len(weights)] = 1 // absorb normalization round-off
	return s, nil
}

// mustStep is NewStepAt for the static catalog (panics on error).
func mustStep(name string, cuts, weights []float64) Shape {
	s, err := NewStepAt(name, cuts, weights)
	if err != nil {
		panic(err)
	}
	return s
}

// decileStep spreads the ten weights over the ten deciles of [0, 1].
func decileStep(name string, weights ...float64) Shape {
	cuts := make([]float64, len(weights)+1)
	for i := range cuts {
		cuts[i] = float64(i) / float64(len(weights))
	}
	return mustStep(name, cuts, weights)
}

// Name returns the step shape's catalog name.
func (s *stepShape) Name() string { return s.name }

// CDF interpolates linearly inside the cell containing x, returning the
// exact cumulative weight at every cut position.
func (s *stepShape) CDF(x float64) float64 {
	x = clamp01(x)
	// Find the last cut ≤ x.
	i := sort.SearchFloat64s(s.cuts, x)
	if i < len(s.cuts) && s.cuts[i] == x {
		return s.cum[i]
	}
	i-- // s.cuts[i] < x < s.cuts[i+1]
	return s.cum[i] + (x-s.cuts[i])/(s.cuts[i+1]-s.cuts[i])*(s.cum[i+1]-s.cum[i])
}

// massSpan keeps equal-width cells inside one segment at exactly equal
// mass: mass = segment density × width, computed with the same floats for
// every such cell. Spans crossing a cut fall back to CDF differencing.
func (s *stepShape) massSpan(x1, width float64) float64 {
	i := sort.SearchFloat64s(s.cuts, x1)
	if i == len(s.cuts) || s.cuts[i] != x1 {
		i-- // s.cuts[i] < x1 < s.cuts[i+1]
	}
	if i < len(s.w) && x1+width <= s.cuts[i+1] {
		return s.w[i] / (s.cuts[i+1] - s.cuts[i]) * width
	}
	return s.CDF(clamp01(x1+width)) - s.CDF(x1)
}

// Quantile inverts the step CDF exactly; mass-free cells are skipped.
func (s *stepShape) Quantile(u float64) float64 {
	u = clamp01(u)
	i := sort.SearchFloat64s(s.cum, u)
	if i < len(s.cum) && s.cum[i] == u {
		// Land on the cut; for u inside a flat run this is the first cell
		// boundary with that cumulative mass.
		return s.cuts[i]
	}
	i-- // s.cum[i] < u < s.cum[i+1], so the cell has positive mass
	return s.cuts[i] + (u-s.cum[i])/(s.cum[i+1]-s.cum[i])*(s.cuts[i+1]-s.cuts[i])
}

// --- Peaks -----------------------------------------------------------------------

// fmtPercent renders a peak fraction as a whole percentage when possible.
func fmtPercent(p float64) string {
	pct := p * 100
	if r := math.Round(pct); math.Abs(pct-r) < 1e-9 {
		pct = r
	}
	return fmt.Sprintf("%g%%", pct)
}

// PeakLow concentrates fraction p of the mass on the bottom decile of the
// domain, the remainder spreading uniformly ("95% low"). p clamps to
// [0.01, 0.99].
func PeakLow(p float64) Shape {
	p = math.Min(0.99, math.Max(0.01, p))
	return mustStep(fmtPercent(p)+" low", []float64{0, 0.1, 1}, []float64{p, 1 - p})
}

// PeakHigh concentrates fraction p of the mass on the top decile of the
// domain ("95% high"). p clamps to [0.01, 0.99].
func PeakHigh(p float64) Shape {
	p = math.Min(0.99, math.Max(0.01, p))
	return mustStep(fmtPercent(p)+" high", []float64{0, 0.9, 1}, []float64{1 - p, p})
}

// --- Gauss -----------------------------------------------------------------------

// gaussSigma is the catalog's bell width relative to the domain: wide enough
// that a centered Gauss covers the middle half, narrow enough that a
// relocated Gauss leaves the far half nearly empty.
const gaussSigma = 0.15

// gaussShape is a Gauss truncated to [0, 1].
type gaussShape struct {
	name      string
	mu, sigma float64
	phi0      float64 // Φ((0−μ)/σ)
	span      float64 // Φ((1−μ)/σ) − Φ((0−μ)/σ)
}

func newGauss(name string, mu, sigma float64) *gaussShape {
	g := &gaussShape{name: name, mu: mu, sigma: sigma}
	g.phi0 = stdNormalCDF((0 - mu) / sigma)
	g.span = stdNormalCDF((1-mu)/sigma) - g.phi0
	return g
}

// Gauss returns the catalog Gauss: a bell centered mid-domain.
func Gauss() Shape { return newGauss("gauss", 0.5, gaussSigma) }

// RelocatedGauss returns a Gauss whose center is relocated to the given
// normalized position — the paper's "relocated Gauss" whose mass
// concentrates on the zero-subdomains of centered profile corpora.
func RelocatedGauss(center float64) Shape {
	center = clamp01(center)
	return newGauss(fmt.Sprintf("relgauss@%g", center), center, gaussSigma)
}

func stdNormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// Name returns the shape's catalog name.
func (g *gaussShape) Name() string { return g.name }

// CDF of the truncated Gauss.
func (g *gaussShape) CDF(x float64) float64 {
	x = clamp01(x)
	return clamp01((stdNormalCDF((x-g.mu)/g.sigma) - g.phi0) / g.span)
}

// Quantile inverts the truncated Gauss analytically via Erfinv.
func (g *gaussShape) Quantile(u float64) float64 {
	p := g.phi0 + clamp01(u)*g.span
	z := math.Sqrt2 * math.Erfinv(2*p-1)
	return clamp01(g.mu + g.sigma*z)
}

// --- Falling ---------------------------------------------------------------------

// fallingShape has the linearly decreasing density 2(1−x): frequent low
// values, rare high values (catalog name "falling").
type fallingShape struct{}

// Name returns "falling".
func (fallingShape) Name() string { return "falling" }

// CDF of the triangular density 2(1−x) is x(2−x).
func (fallingShape) CDF(x float64) float64 {
	x = clamp01(x)
	return x * (2 - x)
}

// Quantile solves x(2−x) = u for x ∈ [0, 1].
func (fallingShape) Quantile(u float64) float64 {
	return 1 - math.Sqrt(1-clamp01(u))
}

// --- Named wrapper ---------------------------------------------------------------

// named aliases a shape under a catalog key ("relgauss-low") while keeping
// its behavior, so ByName(name).Name() == name for every registry entry.
type named struct {
	Shape
	key string
}

// Name returns the catalog key.
func (n named) Name() string { return n.key }

// Quantile forwards the wrapped shape's analytic inverse when present.
func (n named) Quantile(u float64) float64 {
	if q, ok := n.Shape.(quantiler); ok {
		return q.Quantile(u)
	}
	return quantile(bare{n.Shape}, u)
}

// massSpan forwards the wrapped shape's exact width accounting.
func (n named) massSpan(x1, width float64) float64 {
	return spanMass(n.Shape, x1, width)
}

// bare strips the quantiler interface so quantile() bisects the CDF instead
// of recursing into named.Quantile.
type bare struct{ Shape }
