package dist

import (
	"math"
	"math/rand"

	"genas/internal/schema"
)

// Dist binds a Shape to a concrete attribute domain. It is an immutable
// value: the engine, the selectivity measures and the experiment harness
// pass it around freely.
//
// The normalization contract: domain value v occupies normalized position
// (v − lo) / d where d is the domain size. On numeric domains this is the
// usual affine rescaling; on integer and categorical domains each code v
// owns the half-open cell [(v−lo)/d, (v−lo+1)/d), so points carry mass and
// Mass sums cell masses. Sample inverts the shape's CDF through the same
// mapping, which makes sampling and Mass agree by construction.
type Dist struct {
	shape Shape
	dom   schema.Domain
	joint *correlated // non-nil only for NewCorrelated results
}

// New binds a shape to a domain.
func New(sh Shape, dom schema.Domain) Dist {
	return Dist{shape: sh, dom: dom}
}

// Shape returns the underlying normalized-domain shape (nil for the zero
// Dist).
func (d Dist) Shape() Shape { return d.shape }

// Domain returns the bound attribute domain.
func (d Dist) Domain() schema.Domain { return d.dom }

// span returns the normalization size d: interval length for numeric
// domains, value count for integer and categorical ones.
func (d Dist) span() float64 { return d.dom.Size() }

// Mass returns the probability mass of the interval under the distribution.
// Intervals are clipped to the domain; empty intervals have zero mass. On
// numeric domains open and closed bounds coincide (points are atomless); on
// integer and categorical domains the mass is the sum over the integer
// values the interval contains.
func (d Dist) Mass(iv schema.Interval) float64 {
	if d.shape == nil {
		return 0
	}
	c := iv.Intersect(d.dom.Interval())
	if c.Empty() {
		return 0
	}
	lo, span := d.dom.Lo(), d.span()
	var x1, width float64
	switch d.dom.Kind() {
	case schema.KindInteger, schema.KindCategorical:
		a := math.Ceil(c.Lo)
		if c.LoOpen && a == c.Lo {
			a++
		}
		b := math.Floor(c.Hi)
		if c.HiOpen && b == c.Hi {
			b--
		}
		if a > b {
			return 0
		}
		x1 = (a - lo) / span
		width = (b - a + 1) / span
	default:
		x1 = (c.Lo - lo) / span
		width = (c.Hi - c.Lo) / span
	}
	return spanMass(d.shape, x1, width)
}

// Sample draws one value by inverse-CDF sampling. Numeric domains yield
// continuous values in [lo, hi]; integer and categorical domains yield the
// integral code whose cell the inverse CDF lands in, so the empirical value
// frequencies converge to Mass of the corresponding point intervals.
func (d Dist) Sample(rng *rand.Rand) float64 {
	if d.shape == nil {
		return d.dom.Lo()
	}
	x := quantile(d.shape, rng.Float64())
	lo, hi, span := d.dom.Lo(), d.dom.Hi(), d.span()
	switch d.dom.Kind() {
	case schema.KindInteger, schema.KindCategorical:
		v := lo + math.Floor(x*span)
		if v > hi {
			v = hi
		}
		return v
	default:
		v := lo + x*span
		if v > hi {
			v = hi
		}
		return v
	}
}
