// Package dist models the event and profile value distributions that drive
// every selectivity measure of Hinze & Bittner, "Efficient Distribution-Based
// Event Filtering" (ICDCS Workshops 2002).
//
// # Shapes and distributions
//
// A Shape is a probability distribution over the normalized unit interval
// [0, 1]: it exposes a cumulative distribution function with CDF(0) = 0 and
// CDF(1) = 1. Shapes are domain-free so one catalog entry ("gauss", "95%
// low", "d39", …) can be bound to any attribute domain. Binding happens via
// New, which pairs a Shape with a schema.Domain and yields a Dist — the
// object the rest of the system works with:
//
//   - Dist.Mass(iv) integrates the distribution over a subrange interval of
//     the attribute axis. On numeric domains single points are atomless; on
//     integer and categorical domains every code v owns the normalized cell
//     [(v−lo)/d, (v−lo+1)/d), so equality profiles receive real mass.
//   - Dist.Sample(rng) draws a value by inverse-CDF sampling through exactly
//     the same normalization, so empirical event streams converge to the
//     analytic masses — the property that makes scenario TV4 ("all possible
//     events, weighted by the event distribution") a valid substitute for
//     posting millions of events.
//
// # The catalog
//
// ByName resolves the paper's distribution vocabulary (§4.3, Fig. 3):
//
//   - "equal" — the uniform distribution (UniformShape).
//   - "gauss" — a truncated Gauss centered mid-domain; "relgauss-low" and
//     "relgauss-high" are RelocatedGauss variants whose mean sits at 10% or
//     90% of the domain, concentrating mass on the zero-subdomains of
//     centered profile corpora (the Fig. 6 event streams).
//   - "90% high", "95% high", "90% low", "95% low" — PeakHigh/PeakLow step
//     distributions placing the named fraction of the mass on the top or
//     bottom decile ("95% of the events fall into the peak region").
//   - "falling" — linearly decreasing density 2(1−x).
//   - "d1" … "d42" — the exemplary step distributions of Fig. 3: ramps,
//     plateaus, U-shapes, bimodals and sharp peaks that the figure
//     reproductions (Fig. 4/5) sweep over.
//
// NewStepAt builds ad-hoc step distributions with exact masses on given
// cut positions — the tests reconstruct the paper's Examples 2–4 with it.
// NewCorrelated builds mixture-of-product joints for studying how the
// independence assumption of the analytic model degrades.
//
// # How the measures consume distributions
//
// The selectivity package evaluates Measures V1–V3 by ranking every tree
// bucket with Dist.Mass: V1 ranks by event probability P_e, V2 by profile
// probability P_p, V3 by the product. Measures A1–A3 order the tree levels:
// A2 weighs each attribute's zero-subdomain D₀ with the event mass
// Dist.Mass(gap) of its gaps, and A3 minimizes the full analytic cost, again
// integrating Mass over every bucket. MassOn is the normalized-domain
// shortcut behind the Fig. 3 decile table.
//
// # The adaptation loop
//
// The paper's filter "can either work based on predefined distributions for
// the observed events, or it has to maintain a history of events". The
// history mode is Histogram → Snapshot → TotalVariation:
//
//  1. a Histogram per attribute counts observed events into equal-width bins
//     (concurrent-safe, lock-free);
//  2. Snapshot freezes the counts into a normalized step Shape;
//  3. TotalVariation compares the snapshot against the Shape the engine was
//     last optimized for; when the drift exceeds the policy threshold the
//     adaptive component rebinds the snapshots with New and restructures the
//     tree (cheap value reordering per V1/V3, optionally a full A2 rebuild).
//
// TotalVariation is the standard total-variation distance on a common
// equal-width discretization, always in [0, 1], and 0 for identical shapes —
// the hysteresis the paper asks for ("a fragile measure, not robust to
// changes in the distributions") falls out of thresholding it.
package dist
