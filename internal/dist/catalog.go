package dist

import (
	"fmt"
	"sort"
)

// The catalog realizes the paper's distribution vocabulary (§4.3, Fig. 3):
// the named distributions the figures sweep over plus the exemplary family
// d1…d42. Each dN is a step shape; most spread over the ten deciles of the
// normalized domain, while the sharp peaks (d39, d40, d42) concentrate on a
// few domain values as the paper's extreme cases do. The family covers the
// qualitative classes the evaluation needs: flat, ramps, plateaus, center
// peaks, U-shapes, bimodals and one-sided peaks of varying sharpness.
var catalog = map[string]Shape{}

// register adds a shape under the given catalog key, wrapping it so that
// ByName(key).Name() == key.
func register(key string, sh Shape) {
	if sh.Name() != key {
		sh = named{Shape: sh, key: key}
	}
	catalog[key] = sh
}

func init() {
	register("equal", UniformShape{})
	register("gauss", Gauss())
	register("relgauss-low", RelocatedGauss(0.1))
	register("relgauss-high", RelocatedGauss(0.9))
	register("falling", fallingShape{})
	register("90% high", PeakHigh(0.90))
	register("95% high", PeakHigh(0.95))
	register("90% low", PeakLow(0.90))
	register("95% low", PeakLow(0.95))

	for i, weights := range dDeciles {
		name := fmt.Sprintf("d%d", i+1)
		if weights == nil {
			continue // sharp peaks registered below with custom cuts
		}
		register(name, decileStep(name, weights...))
	}
	// The sharp one-sided peaks: nearly all mass on the outermost 2–4% of
	// the domain, the remainder uniform.
	register("d39", mustStep("d39", []float64{0, 0.02, 1}, []float64{95, 5}))
	register("d40", mustStep("d40", []float64{0, 0.97, 1}, []float64{5, 95}))
	register("d42", mustStep("d42", []float64{0, 0.96, 1}, []float64{8, 92}))
}

// dDeciles lists the decile weights of d1…d42 (normalized internally). Nil
// rows are the sharp peaks built with custom cuts in init.
var dDeciles = [][]float64{
	{1, 1, 1, 1, 1, 1, 1, 1, 1, 1},   // d1: flat
	{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},  // d2: rising ramp
	{10, 9, 8, 7, 6, 5, 4, 3, 2, 1},  // d3: falling ramp
	{60, 15, 8, 5, 3, 3, 2, 2, 1, 1}, // d4: strong low peak
	{6, 4, 3, 2, 1, 1, 1, 1, 1, 1},   // d5: moderate low peak
	{1, 1, 1, 1, 1, 2, 3, 4, 5, 6},   // d6: moderate high peak
	{1, 1, 1, 2, 8, 8, 2, 1, 1, 1},   // d7: narrow center peak
	{5, 4, 3, 1, 1, 1, 1, 3, 4, 5},   // d8: center valley
	{6, 3, 1, 1, 1, 1, 1, 1, 3, 6},   // d9: U-shape
	{4, 4, 4, 4, 1, 1, 1, 1, 1, 1},   // d10: low plateau
	{1, 1, 1, 1, 1, 1, 4, 4, 4, 4},   // d11: high plateau
	{1, 3, 5, 3, 1, 1, 3, 5, 3, 1},   // d12: twin humps
	{2, 4, 6, 8, 6, 4, 2, 1, 1, 1},   // d13: low-center bell
	{1, 1, 1, 1, 2, 2, 3, 5, 9, 20},  // d14: strong high peak
	{1, 1, 1, 3, 5, 9, 5, 3, 1, 1},   // d15: mid-high bell
	{4, 4, 4, 3, 3, 3, 3, 2, 2, 2},   // d16: gentle fall
	{1, 1, 2, 4, 7, 7, 4, 2, 1, 1},   // d17: center bell
	{1, 2, 3, 4, 4, 4, 4, 3, 2, 1},   // d18: wide center plateau
	{2, 2, 2, 3, 3, 3, 4, 4, 4, 4},   // d19: gentle rise
	{8, 1, 1, 1, 1, 1, 1, 1, 1, 8},   // d20: hard edges
	{12, 6, 3, 2, 1, 1, 1, 1, 1, 1},  // d21: steep fall
	{1, 1, 1, 1, 1, 1, 2, 3, 6, 12},  // d22: steep rise
	{1, 5, 1, 5, 1, 5, 1, 5, 1, 5},   // d23: comb
	{3, 1, 4, 1, 5, 1, 4, 1, 3, 1},   // d24: alternating
	{1, 2, 4, 2, 1, 1, 2, 4, 2, 1},   // d25: soft bimodal
	{5, 5, 1, 1, 1, 1, 1, 1, 5, 5},   // d26: wide U
	{2, 3, 4, 5, 5, 5, 5, 4, 3, 2},   // d27: dome
	{1, 1, 2, 2, 3, 3, 2, 2, 1, 1},   // d28: low dome
	{7, 5, 4, 3, 2, 2, 1, 1, 1, 1},   // d29: convex fall
	{1, 1, 1, 1, 2, 2, 3, 4, 5, 7},   // d30: convex rise
	{1, 8, 4, 2, 1, 1, 1, 1, 1, 1},   // d31: offset low peak
	{1, 1, 1, 1, 1, 1, 2, 4, 8, 1},   // d32: offset high peak
	{2, 6, 2, 1, 1, 1, 1, 2, 6, 2},   // d33: shifted bimodal
	{2, 6, 9, 3, 1, 1, 3, 9, 6, 2},   // d34: strong bimodal
	{1, 1, 6, 6, 1, 1, 6, 6, 1, 1},   // d35: twin plateaus
	{10, 5, 2, 1, 1, 1, 1, 2, 5, 10}, // d36: sharp U
	{5, 4, 5, 4, 5, 4, 5, 4, 5, 4},   // d37: near-flat ripple
	{1, 2, 1, 2, 1, 2, 1, 2, 1, 2},   // d38: near-flat ripple (inverse)
	nil,                              // d39: sharp low peak (custom cuts)
	nil,                              // d40: sharp high peak (custom cuts)
	{2, 2, 3, 4, 5, 5, 6, 7, 8, 8},   // d41: moderate rise
	nil,                              // d42: sharp high peak (custom cuts)
}

// ByName resolves a catalog name to its shape.
func ByName(name string) (Shape, error) {
	sh, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDist, name)
	}
	return sh, nil
}

// Names returns all registered catalog names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for name := range catalog {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
