package dist

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestByNameRoundTrips: every registered name resolves, reports itself as
// its own name, and resolves again through that name.
func TestByNameRoundTrips(t *testing.T) {
	names := Names()
	if len(names) < 42 {
		t.Fatalf("catalog has %d names, want the full family", len(names))
	}
	for _, name := range names {
		sh, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if sh.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, sh.Name())
		}
		again, err := ByName(sh.Name())
		if err != nil || again.Name() != name {
			t.Errorf("round trip of %q failed: %v", name, err)
		}
	}
}

// TestByNameUnknown: unknown names report ErrUnknownist.
func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("bogus"); !errors.Is(err, ErrUnknownDist) {
		t.Errorf("err = %v", err)
	}
}

// TestCatalogCDFContract: every catalog shape is a CDF: 0 at 0, 1 at 1,
// monotone, clamping outside [0,1].
func TestCatalogCDFContract(t *testing.T) {
	for _, name := range Names() {
		sh, _ := ByName(name)
		if c := sh.CDF(0); math.Abs(c) > 1e-12 {
			t.Errorf("%s: CDF(0) = %g", name, c)
		}
		if c := sh.CDF(1); math.Abs(c-1) > 1e-12 {
			t.Errorf("%s: CDF(1) = %g", name, c)
		}
		if sh.CDF(-5) != sh.CDF(0) || sh.CDF(5) != sh.CDF(1) {
			t.Errorf("%s: CDF does not clamp", name)
		}
		prev := 0.0
		for i := 0; i <= 200; i++ {
			c := sh.CDF(float64(i) / 200)
			if c < prev-1e-12 {
				t.Fatalf("%s: CDF not monotone at %d/200", name, i)
			}
			prev = c
		}
	}
}

// TestCatalogDecileMasses: the Fig. 3 view — decile masses are non-negative
// and sum to 1 for every catalog entry.
func TestCatalogDecileMasses(t *testing.T) {
	for _, name := range Names() {
		sh, _ := ByName(name)
		total := 0.0
		for d := 0; d < 10; d++ {
			m := MassOn(sh, float64(d)/10, float64(d+1)/10)
			if m < 0 {
				t.Errorf("%s: decile %d mass %g", name, d, m)
			}
			total += m
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%s: decile masses sum to %g", name, total)
		}
	}
}

// TestCatalogQualitativeRoles: the named distributions carry the mass
// placement the paper's figures rely on.
func TestCatalogQualitativeRoles(t *testing.T) {
	low := func(name string) float64 { return MassOn(mustByName(t, name), 0, 0.1) }
	high := func(name string) float64 { return MassOn(mustByName(t, name), 0.9, 1) }

	if m := low("95% low"); math.Abs(m-0.95) > 1e-12 {
		t.Errorf("95%% low bottom decile = %g", m)
	}
	if m := high("95% high"); math.Abs(m-0.95) > 1e-12 {
		t.Errorf("95%% high top decile = %g", m)
	}
	if m := high("90% high"); math.Abs(m-0.90) > 1e-12 {
		t.Errorf("90%% high top decile = %g", m)
	}
	// Relocated Gauss concentrates at its end of the domain.
	if m := MassOn(mustByName(t, "relgauss-low"), 0, 0.3); m < 0.85 {
		t.Errorf("relgauss-low mass below 0.3 = %g", m)
	}
	if m := MassOn(mustByName(t, "relgauss-high"), 0.7, 1); m < 0.85 {
		t.Errorf("relgauss-high mass above 0.7 = %g", m)
	}
	// The centered Gauss is symmetric and middle-heavy.
	g := mustByName(t, "gauss")
	if m := MassOn(g, 0.3, 0.7); m < 0.7 {
		t.Errorf("gauss central mass = %g", m)
	}
	if d := math.Abs(MassOn(g, 0, 0.5) - 0.5); d > 1e-9 {
		t.Errorf("gauss asymmetric by %g", d)
	}
	// Falling decreases monotonically across deciles.
	f := mustByName(t, "falling")
	prev := math.Inf(1)
	for d := 0; d < 10; d++ {
		m := MassOn(f, float64(d)/10, float64(d+1)/10)
		if m > prev {
			t.Errorf("falling decile %d mass %g grows", d, m)
		}
		prev = m
	}
	// The sharp peaks: d39 low, d40/d42 high.
	if m := low("d39"); m < 0.9 {
		t.Errorf("d39 bottom decile = %g", m)
	}
	if m := high("d40"); m < 0.9 {
		t.Errorf("d40 top decile = %g", m)
	}
	if m := high("d42"); m < 0.85 {
		t.Errorf("d42 top decile = %g", m)
	}
}

// TestPeakNames: constructed peaks print whole percentages.
func TestPeakNames(t *testing.T) {
	if n := PeakLow(0.95).Name(); n != "95% low" {
		t.Errorf("PeakLow(0.95).Name() = %q", n)
	}
	if n := PeakHigh(0.8).Name(); n != "80% high" {
		t.Errorf("PeakHigh(0.8).Name() = %q", n)
	}
	if n := PeakLow(0.425).Name(); !strings.HasSuffix(n, "% low") {
		t.Errorf("PeakLow(0.425).Name() = %q", n)
	}
	// Out-of-range fractions clamp instead of producing invalid shapes.
	if m := MassOn(PeakLow(7), 0, 0.1); m > 0.99 || m < 0.9 {
		t.Errorf("clamped peak mass = %g", m)
	}
	if m := MassOn(PeakHigh(-3), 0.9, 1); m < 0.005 || m > 0.05 {
		t.Errorf("clamped peak mass = %g", m)
	}
}

// TestNewStepAtErrors: construction validates its inputs.
func TestNewStepAtErrors(t *testing.T) {
	cases := []struct {
		name    string
		cuts    []float64
		weights []float64
	}{
		{"", []float64{0, 1}, []float64{1}},
		{"x", []float64{0, 1}, nil},
		{"x", []float64{0, 0.5, 1}, []float64{1}},
		{"x", []float64{0.1, 1}, []float64{1}},
		{"x", []float64{0, 0.9}, []float64{1}},
		{"x", []float64{0, 0.6, 0.4, 1}, []float64{1, 1, 1}},
		{"x", []float64{0, 0.5, 0.5, 1}, []float64{1, 1, 1}},
		{"x", []float64{0, 0.5, 1}, []float64{1, -1}},
		{"x", []float64{0, 0.5, 1}, []float64{0, 0}},
		{"x", []float64{0, 0.5, 1}, []float64{1, math.NaN()}},
		{"x", []float64{0, 0.5, 1}, []float64{1, math.Inf(1)}},
		// Endpoint snapping must not collapse a segment that only looked
		// ascending before the snap.
		{"x", []float64{0, 1, 1 + 5e-10}, []float64{9, 1}},
		{"x", []float64{-5e-10, 0, 1}, []float64{1, 9}},
	}
	for _, c := range cases {
		if _, err := NewStepAt(c.name, c.cuts, c.weights); !errors.Is(err, ErrBadStep) {
			t.Errorf("NewStepAt(%q, %v, %v) = %v, want ErrBadStep", c.name, c.cuts, c.weights, err)
		}
	}
	// A valid construction carries exact cut masses.
	sh, err := NewStepAt("ex", []float64{0, 0.125, 0.75, 0.8125, 1}, []float64{0.02, 0.17, 0.01, 0.80})
	if err != nil {
		t.Fatal(err)
	}
	if c := sh.CDF(0.75); math.Abs(c-0.19) > 1e-12 {
		t.Errorf("CDF(0.75) = %g, want 0.19", c)
	}
	if m := MassOn(sh, 0.8125, 1); math.Abs(m-0.80) > 1e-12 {
		t.Errorf("top segment mass = %g, want 0.80", m)
	}
}

// TestTotalVariation: identity is exactly zero, symmetry holds, disjoint
// peaks are nearly maximally distant, and the result stays in [0, 1].
func TestTotalVariation(t *testing.T) {
	for _, name := range Names() {
		sh, _ := ByName(name)
		for _, bins := range []int{1, 10, 64} {
			if tv := TotalVariation(sh, sh, bins); tv != 0 {
				t.Errorf("TV(%s, %s, %d) = %g", name, name, bins, tv)
			}
		}
	}
	a, b := PeakLow(0.95), PeakHigh(0.95)
	tv := TotalVariation(a, b, 10)
	if tv < 0.85 || tv > 1 {
		t.Errorf("TV of disjoint peaks = %g", tv)
	}
	if got := TotalVariation(b, a, 10); got != tv {
		t.Errorf("TV asymmetric: %g vs %g", got, tv)
	}
	if tv := TotalVariation(UniformShape{}, Gauss(), 0); tv < 0 || tv > 1 {
		t.Errorf("TV with degenerate bins = %g", tv)
	}
	// Coarser binning can only lower the measured distance.
	if TotalVariation(a, b, 1) > TotalVariation(a, b, 10)+1e-12 {
		t.Error("coarse TV exceeds fine TV")
	}
}

// TestMassOn: clamping and degenerate intervals.
func TestMassOn(t *testing.T) {
	u := UniformShape{}
	if m := MassOn(u, -1, 2); m != 1 {
		t.Errorf("clamped full mass = %g", m)
	}
	if m := MassOn(u, 0.5, 0.5); m != 0 {
		t.Errorf("empty mass = %g", m)
	}
	if m := MassOn(u, 0.9, 0.1); m != 0 {
		t.Errorf("inverted mass = %g", m)
	}
}
