package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"genas/internal/schema"
)

func twoByTwo(t *testing.T) (Dist, schema.Domain, schema.Domain) {
	t.Helper()
	d1 := intDom(t, 0, 49)
	d2 := intDom(t, 0, 49)
	lo := []Dist{New(PeakLow(0.95), d1), New(PeakLow(0.95), d2)}
	hi := []Dist{New(PeakHigh(0.95), d1), New(PeakHigh(0.95), d2)}
	joint, err := NewCorrelated([]float64{1, 3}, [][]Dist{lo, hi})
	if err != nil {
		t.Fatal(err)
	}
	return joint, d1, d2
}

// TestCorrelatedMarginals: the marginal masses are the weight-average of the
// component masses.
func TestCorrelatedMarginals(t *testing.T) {
	joint, d1, _ := twoByTwo(t)
	if joint.Attrs() != 2 {
		t.Fatalf("Attrs = %d", joint.Attrs())
	}
	for j := 0; j < 2; j++ {
		m := joint.Marginal(j)
		if got := m.Mass(d1.Interval()); math.Abs(got-1) > 1e-9 {
			t.Errorf("marginal %d total mass = %g", j, got)
		}
		// Bottom decile: 0.25·0.95 + 0.75·0.005... = the mixture value.
		want := 0.25*MassOn(PeakLow(0.95), 0, 0.1) + 0.75*MassOn(PeakHigh(0.95), 0, 0.1)
		if got := m.Mass(schema.CO(0, 5)); math.Abs(got-want) > 1e-9 {
			t.Errorf("marginal %d bottom mass = %g, want %g", j, got, want)
		}
	}
	// The joint itself behaves as the first marginal for Mass.
	if a, b := joint.Mass(schema.CO(0, 5)), joint.Marginal(0).Mass(schema.CO(0, 5)); math.Abs(a-b) > 1e-12 {
		t.Errorf("joint mass %g != marginal-0 mass %g", a, b)
	}
	// Marginal of a plain Dist is itself.
	plain := New(Gauss(), d1)
	if got := plain.Marginal(0).Mass(schema.CO(10, 20)); got != plain.Mass(schema.CO(10, 20)) {
		t.Error("plain marginal differs from the distribution")
	}
	if plain.Attrs() != 1 {
		t.Errorf("plain Attrs = %d", plain.Attrs())
	}
}

// TestCorrelatedSampleEvent: joint samples have the right dimension, land in
// the domains, converge to the marginals, and are actually correlated.
func TestCorrelatedSampleEvent(t *testing.T) {
	joint, d1, d2 := twoByTwo(t)
	rng := rand.New(rand.NewSource(33))
	const n = 50000
	var lowBoth, low0, low1 int
	counts0 := make([]float64, 10)
	for i := 0; i < n; i++ {
		ev := joint.SampleEvent(rng)
		if len(ev) != 2 {
			t.Fatalf("event dim = %d", len(ev))
		}
		if !d1.Contains(ev[0]) || !d2.Contains(ev[1]) {
			t.Fatalf("event %v outside domains", ev)
		}
		a := ev[0] < 5
		b := ev[1] < 5
		if a {
			low0++
		}
		if b {
			low1++
		}
		if a && b {
			lowBoth++
		}
		counts0[int(ev[0]/5)]++
	}
	// Marginal convergence on the first attribute.
	m0 := joint.Marginal(0)
	tv := 0.0
	for b := 0; b < 10; b++ {
		want := m0.Mass(schema.CO(float64(b*5), float64(b*5+5)))
		tv += math.Abs(counts0[b]/n - want)
	}
	if tv /= 2; tv > 0.02 {
		t.Errorf("marginal-0 empirical TV = %g", tv)
	}
	// Correlation: P(both low) must far exceed the independent product.
	pBoth := float64(lowBoth) / n
	pInd := float64(low0) / n * float64(low1) / n
	if pBoth < 2*pInd {
		t.Errorf("no correlation: P(both)=%g vs independent %g", pBoth, pInd)
	}
	// A plain Dist samples one-element events.
	plain := New(UniformShape{}, d1)
	if ev := plain.SampleEvent(rng); len(ev) != 1 || !d1.Contains(ev[0]) {
		t.Errorf("plain SampleEvent = %v", ev)
	}
}

// TestNewCorrelatedErrors: construction validates its inputs.
func TestNewCorrelatedErrors(t *testing.T) {
	d1 := intDom(t, 0, 49)
	d2 := intDom(t, 0, 9)
	row := []Dist{New(UniformShape{}, d1)}
	cases := []struct {
		weights    []float64
		components [][]Dist
	}{
		{nil, nil},
		{[]float64{1}, nil},
		{[]float64{1, 1}, [][]Dist{row}},
		{[]float64{1}, [][]Dist{{}}},
		{[]float64{-1}, [][]Dist{row}},
		{[]float64{0}, [][]Dist{row}},
		{[]float64{math.NaN(), 1}, [][]Dist{row, row}},
		{[]float64{math.Inf(1), 1}, [][]Dist{row, row}},
		{[]float64{1, 1}, [][]Dist{row, {New(UniformShape{}, d1), New(UniformShape{}, d1)}}},
		{[]float64{1, 1}, [][]Dist{row, {New(UniformShape{}, d2)}}},
		{[]float64{1}, [][]Dist{{{}}}},
	}
	for i, c := range cases {
		if _, err := NewCorrelated(c.weights, c.components); !errors.Is(err, ErrBadCorrelated) {
			t.Errorf("case %d: err = %v, want ErrBadCorrelated", i, err)
		}
	}
	// Nested correlated components are rejected.
	joint, _, _ := twoByTwo(t)
	if _, err := NewCorrelated([]float64{1}, [][]Dist{{joint}}); !errors.Is(err, ErrBadCorrelated) {
		t.Errorf("nested: err = %v", err)
	}
	// Size-equal categorical domains with different label sets must not mix.
	rgb, err := schema.NewCategoricalDomain("red", "green", "blue")
	if err != nil {
		t.Fatal(err)
	}
	pets, err := schema.NewCategoricalDomain("cat", "dog", "fish")
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewCorrelated([]float64{1, 1}, [][]Dist{
		{New(UniformShape{}, rgb)},
		{New(UniformShape{}, pets)},
	})
	if !errors.Is(err, ErrBadCorrelated) {
		t.Errorf("mismatched categorical labels: err = %v", err)
	}
}
