package dist

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"genas/internal/schema"
)

func TestNewHistogramErrors(t *testing.T) {
	dom := intDom(t, 0, 9)
	if _, err := NewHistogram(dom, 0); !errors.Is(err, ErrBadHistogram) {
		t.Errorf("bins=0: %v", err)
	}
	if _, err := NewHistogram(dom, -3); !errors.Is(err, ErrBadHistogram) {
		t.Errorf("bins=-3: %v", err)
	}
	if _, err := NewHistogram(schema.Domain{}, 4); !errors.Is(err, ErrBadHistogram) {
		t.Errorf("unset domain: %v", err)
	}
	h, err := NewHistogram(dom, 5)
	if err != nil || h.Bins() != 5 {
		t.Fatalf("h=%v err=%v", h, err)
	}
}

// TestHistogramEmptySnapshotIsUniform: no history means the uniform prior,
// so a fresh adaptor never reports drift against its own starting point.
func TestHistogramEmptySnapshotIsUniform(t *testing.T) {
	h, err := NewHistogram(intDom(t, 0, 99), 16)
	if err != nil {
		t.Fatal(err)
	}
	if tv := TotalVariation(h.Snapshot(), UniformShape{}, 16); tv != 0 {
		t.Errorf("empty snapshot drifts by %g", tv)
	}
	if h.N() != 0 {
		t.Errorf("N = %d", h.N())
	}
}

// TestHistogramConvergesToSource: observing a stream reproduces its shape.
func TestHistogramConvergesToSource(t *testing.T) {
	dom := intDom(t, 0, 99)
	for _, name := range []string{"equal", "gauss", "95% low", "d34"} {
		sh := mustByName(t, name)
		src := New(sh, dom)
		h, err := NewHistogram(dom, 10)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(21))
		const n = 40000
		for i := 0; i < n; i++ {
			h.Observe(src.Sample(rng))
		}
		if h.N() != n {
			t.Fatalf("N = %d", h.N())
		}
		if tv := TotalVariation(h.Snapshot(), sh, 10); tv > 0.02 {
			t.Errorf("%s: snapshot TV from source = %g", name, tv)
		}
		if tv := TotalVariation(h.Shape(), h.Snapshot(), 10); tv != 0 {
			t.Errorf("%s: Shape and Snapshot disagree by %g", name, tv)
		}
	}
}

// TestHistogramClampsOutliers: out-of-domain values land in the edge bins
// instead of corrupting memory or being lost.
func TestHistogramClampsOutliers(t *testing.T) {
	h, err := NewHistogram(numDom(t, 0, 10), 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(-100)
	h.Observe(math.Inf(1)) // clamps to the high edge bin
	h.Observe(10)          // hi boundary maps into the last bin
	h.Observe(math.NaN())  // dropped, not binned
	if h.N() != 3 {
		t.Errorf("N = %d", h.N())
	}
	s := h.Snapshot()
	if m := MassOn(s, 0, 0.25); math.Abs(m-1.0/3) > 1e-9 {
		t.Errorf("low edge bin mass = %g", m)
	}
	if m := MassOn(s, 0.75, 1); math.Abs(m-2.0/3) > 1e-9 {
		t.Errorf("high edge bin mass = %g", m)
	}
}

// TestHistogramConcurrentObserve: Observe is safe under concurrency and no
// count is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	h, err := NewHistogram(intDom(t, 0, 99), 8)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(float64(rng.Intn(100)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.N() != workers*per {
		t.Errorf("N = %d, want %d", h.N(), workers*per)
	}
}

// TestHistogramReset clears the history back to the uniform prior.
func TestHistogramReset(t *testing.T) {
	h, err := NewHistogram(intDom(t, 0, 9), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1)
	}
	h.Reset()
	if h.N() != 0 {
		t.Errorf("N after reset = %d", h.N())
	}
	if tv := TotalVariation(h.Snapshot(), UniformShape{}, 5); tv != 0 {
		t.Errorf("reset snapshot drifts by %g", tv)
	}
}

// TestHistogramDriftDetection: the adaptation loop's core signal — a
// snapshot of a drifted stream is far from the previously applied shape but
// close to the true new source.
func TestHistogramDriftDetection(t *testing.T) {
	dom := intDom(t, 0, 99)
	applied := Shape(UniformShape{})
	src := New(PeakHigh(0.95), dom)
	h, err := NewHistogram(dom, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 5000; i++ {
		h.Observe(src.Sample(rng))
	}
	snap := h.Snapshot()
	if tv := TotalVariation(snap, applied, 16); tv < 0.5 {
		t.Errorf("drifted stream TV from uniform prior = %g, want large", tv)
	}
	if tv := TotalVariation(snap, src.Shape(), 16); tv > 0.1 {
		t.Errorf("snapshot TV from true source = %g, want small", tv)
	}
}
