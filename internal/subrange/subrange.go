// Package subrange decomposes one attribute's domain into the disjoint
// subranges referenced by a set of profiles.
//
// Considering profiles for value or range tests, each attribute's domain D is
// divided into at most (2p−1) subsets referred to in the profiles plus an
// additional subset D₀ which is not referred to in any profile (paper §3).
// The subsets are formed from the non-overlapping subranges created from the
// at most p ranges defined in the p profiles. A profile that does not
// constrain the attribute (don't-care) references the entire domain, so an
// attribute with at least one don't-care profile has D₀ = ∅.
package subrange

import (
	"math"
	"sort"
	"strconv"

	"genas/internal/schema"
)

// Constraint is one profile's restriction on the attribute under
// decomposition. Profiles are identified by dense indices assigned by the
// caller (the filter engine), which keeps profile sets cheap to hash for
// DFSA state sharing.
type Constraint struct {
	// Profile is the dense profile index.
	Profile int
	// Intervals is the canonical disjoint interval union of the predicate;
	// empty means the predicate is unsatisfiable on this domain.
	Intervals []schema.Interval
	// DontCare marks profiles that do not constrain this attribute.
	DontCare bool
}

// Subrange is one maximal piece of the domain covered by a fixed, non-empty
// set of constraining profiles.
type Subrange struct {
	Iv schema.Interval
	// Profiles holds the sorted dense indices of the constraining profiles
	// covering the piece (don't-care profiles are not included here; the
	// tree adds them to every edge and to the complement edge).
	Profiles []int
}

// Decomposition is the full partition of an attribute domain.
type Decomposition struct {
	// Subranges are the covered pieces in natural (ascending) order.
	Subranges []Subrange
	// Gaps are the uncovered pieces in natural order. They form the
	// complement region: the (*) edge if don't-care profiles exist, the
	// zero-subdomain D₀ otherwise.
	Gaps []schema.Interval
	// Star holds the sorted indices of don't-care profiles.
	Star []int
	// GapSize is the measure of the gaps (length for continuous domains,
	// atom count for integer/categorical domains).
	GapSize float64
	// D0Size is the measure of the zero-subdomain D₀: equal to GapSize when
	// no profile is don't-care on the attribute, 0 otherwise.
	D0Size float64
	// DomainSize is d_j, the attribute's domain size.
	DomainSize float64
}

// piece is an elementary fragment during the sweep.
type piece struct {
	iv    schema.Interval
	profs []int
}

// Decompose partitions dom according to the constraints.
func Decompose(dom schema.Domain, cons []Constraint) Decomposition {
	constraining := make([]Constraint, 0, len(cons))
	var star []int
	for _, c := range cons {
		if c.DontCare {
			star = append(star, c.Profile)
			continue
		}
		constraining = append(constraining, c)
	}
	return decompose(dom, constraining, star)
}

// DecomposeIndexed is Decompose for a pre-indexed constraint table: byProfile
// is indexed by dense profile id, alive selects the live subset. The tree
// builder calls this at every automaton state; it avoids materializing a
// fresh constraint slice per state.
func DecomposeIndexed(dom schema.Domain, byProfile []Constraint, alive []int) Decomposition {
	constraining := make([]Constraint, 0, len(alive))
	var star []int
	for _, pi := range alive {
		c := byProfile[pi]
		if c.DontCare {
			star = append(star, pi)
			continue
		}
		constraining = append(constraining, c)
	}
	return decompose(dom, constraining, star)
}

func decompose(dom schema.Domain, constraining []Constraint, star []int) Decomposition {
	dec := Decomposition{DomainSize: dom.Size(), Star: star}
	clip := dom.Interval()
	discrete := dom.Kind() == schema.KindInteger || dom.Kind() == schema.KindCategorical
	sort.Ints(dec.Star)

	if len(constraining) == 0 {
		// Whole domain is one gap (the (*) region if Star is non-empty).
		dec.Gaps = []schema.Interval{clip}
		dec.GapSize = measure(clip, discrete)
		if len(dec.Star) == 0 {
			dec.D0Size = dec.GapSize
		}
		return dec
	}

	// Sweep: distinct endpoints induce point pieces and open pieces. Piece
	// 2i is the point {cuts[i]}, piece 2i+1 the open interval
	// (cuts[i], cuts[i+1]). Profiles enter and leave at piece indices; runs
	// of pieces between changes share one profile set, so sets are
	// materialized once per run instead of once per piece (the naive
	// per-piece × per-profile scan is quadratic on large corpora).
	var all []schema.Interval
	for _, c := range constraining {
		all = append(all, c.Intervals...)
	}
	cuts := schema.Cuts(clip, all)
	cutIdx := make(map[float64]int, len(cuts))
	for i, x := range cuts {
		cutIdx[x] = i
	}
	pieces := elementaryPieces(cuts)
	nPieces := len(pieces)

	addEv := make([][]int, nPieces+1)
	remEv := make([][]int, nPieces+1)
	for _, c := range constraining {
		for _, iv := range c.Intervals {
			civ := iv.Intersect(clip)
			if civ.Empty() {
				continue
			}
			i, ok1 := cutIdx[civ.Lo]
			j, ok2 := cutIdx[civ.Hi]
			if !ok1 || !ok2 {
				continue // defensive: endpoints are cuts by construction
			}
			start := 2 * i
			if civ.LoOpen {
				start++
			}
			end := 2 * j
			if civ.HiOpen {
				end--
			}
			if end < start {
				continue
			}
			addEv[start] = append(addEv[start], c.Profile)
			remEv[end+1] = append(remEv[end+1], c.Profile)
		}
	}

	classified := make([]piece, 0, nPieces)
	active := make(map[int]struct{})
	var runSet []int
	dirty := true
	for pi, iv := range pieces {
		if len(addEv[pi]) > 0 || len(remEv[pi]) > 0 {
			for _, p := range addEv[pi] {
				active[p] = struct{}{}
			}
			for _, p := range remEv[pi] {
				delete(active, p)
			}
			dirty = true
		}
		if dirty {
			runSet = make([]int, 0, len(active))
			for p := range active {
				runSet = append(runSet, p)
			}
			sort.Ints(runSet)
			dirty = false
		}
		classified = append(classified, piece{iv: iv, profs: runSet})
	}

	// On discrete domains, drop pieces containing no atom (e.g. the open
	// interval (3,4) on an integer grid) and snap the survivors to closed
	// atom-aligned intervals so that grid adjacency is visible to merging.
	if discrete {
		kept := classified[:0]
		for _, p := range classified {
			lo, hi, n := atomBounds(p.iv)
			if n == 0 {
				continue
			}
			p.iv = schema.Closed(lo, hi)
			kept = append(kept, p)
		}
		classified = kept
	}

	// Merge adjacent pieces with identical profile sets (this produces the
	// single [30,50] edge when only one profile with a1 ≥ 30 is alive).
	merged := mergeAdjacent(classified, discrete)

	for _, p := range merged {
		if len(p.profs) == 0 {
			dec.Gaps = append(dec.Gaps, p.iv)
			dec.GapSize += measure(p.iv, discrete)
			continue
		}
		dec.Subranges = append(dec.Subranges, Subrange{Iv: p.iv, Profiles: p.profs})
	}
	if len(dec.Star) == 0 {
		dec.D0Size = dec.GapSize
	}
	return dec
}

// elementaryPieces splits the domain at the cut positions into alternating
// point and open pieces: {c0} (c0,c1) {c1} (c1,c2) … {ck}.
func elementaryPieces(cuts []float64) []schema.Interval {
	out := make([]schema.Interval, 0, 2*len(cuts)+1)
	for i, x := range cuts {
		out = append(out, schema.Point(x))
		if i+1 < len(cuts) {
			op := schema.Open(x, cuts[i+1])
			if !op.Empty() {
				out = append(out, op)
			}
		}
	}
	return out
}

// atomBounds returns the first and last integer inside the interval and the
// atom count.
func atomBounds(iv schema.Interval) (lo, hi, n float64) {
	lo = math.Ceil(iv.Lo)
	if iv.LoOpen && lo == iv.Lo {
		lo++
	}
	hi = math.Floor(iv.Hi)
	if iv.HiOpen && hi == iv.Hi {
		hi--
	}
	if hi < lo {
		return 0, 0, 0
	}
	return lo, hi, hi - lo + 1
}

// atomCount counts integers inside the interval.
func atomCount(iv schema.Interval) float64 {
	_, _, n := atomBounds(iv)
	return n
}

// Snap normalizes one piece of a domain partition: on discrete domains the
// interval is snapped to the closed atom-aligned form the decomposition
// produces (ok=false when it holds no atom), on continuous domains it passes
// through (ok=false when empty). The incremental tree transform splits
// existing buckets against a new profile's intervals and must land on the
// same canonical pieces a fresh decomposition would.
func Snap(iv schema.Interval, discrete bool) (schema.Interval, bool) {
	if discrete {
		lo, hi, n := atomBounds(iv)
		if n == 0 {
			return schema.Interval{}, false
		}
		return schema.Closed(lo, hi), true
	}
	if iv.Empty() {
		return schema.Interval{}, false
	}
	return iv, true
}

// measure returns the paper's size of a piece: atom count on discrete
// domains, interval length on continuous ones.
func measure(iv schema.Interval, discrete bool) float64 {
	if discrete {
		return atomCount(iv)
	}
	return iv.Length()
}

func sameProfiles(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeAdjacent joins touching pieces with equal profile sets.
func mergeAdjacent(in []piece, discrete bool) []piece {
	if len(in) == 0 {
		return nil
	}
	out := make([]piece, 0, len(in))
	cur := in[0]
	for _, p := range in[1:] {
		if sameProfiles(cur.profs, p.profs) && touches(cur.iv, p.iv, discrete) {
			cur.iv = join(cur.iv, p.iv)
			continue
		}
		out = append(out, cur)
		cur = p
	}
	out = append(out, cur)
	return out
}

// touches reports whether b continues a with no domain value between them.
func touches(a, b schema.Interval, discrete bool) bool {
	if discrete {
		// Atom-aligned closed intervals are contiguous when b starts on the
		// next grid point (the open gap between them held no atom).
		return b.Lo == a.Hi+1 || b.Lo == a.Hi
	}
	if a.Hi != b.Lo {
		return false
	}
	// If both sides exclude the shared endpoint the single point a.Hi would
	// be lost, so at least one side must be closed.
	return !a.HiOpen || !b.LoOpen
}

func join(a, b schema.Interval) schema.Interval {
	return schema.Interval{Lo: a.Lo, LoOpen: a.LoOpen, Hi: b.Hi, HiOpen: b.HiOpen}
}

// Key builds a canonical string key of a profile set for DFSA state sharing.
// It is on the tree-construction hot path.
func Key(profs []int) string {
	buf := make([]byte, 0, 8*len(profs))
	for i, p := range profs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(p), 10)
	}
	return string(buf)
}

// MaxSubranges returns the paper's bound 2p−1 on the number of covered
// subranges produced by p single-interval profiles (p ≥ 1).
func MaxSubranges(p int) int {
	if p < 1 {
		return 0
	}
	return 2*p - 1
}
