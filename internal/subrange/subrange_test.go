package subrange

import (
	"math/rand"
	"testing"

	"genas/internal/schema"
)

func numDom(t *testing.T, lo, hi float64) schema.Domain {
	t.Helper()
	d, err := schema.NewNumericDomain(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func intDom(t *testing.T, lo, hi int) schema.Domain {
	t.Helper()
	d, err := schema.NewIntegerDomain(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPaperDecomposition reproduces the temperature attribute of Fig. 1:
// profiles a1≥35, a1≥30 (×3), a1∈[−30,−20] yield subranges [−30,−20],
// [30,35), [35,50] and zero-subdomain (−20,30) of size 50.
func TestPaperDecomposition(t *testing.T) {
	dom := numDom(t, -30, 50)
	cons := []Constraint{
		{Profile: 0, Intervals: []schema.Interval{schema.Closed(35, 50)}},   // P1
		{Profile: 1, Intervals: []schema.Interval{schema.Closed(30, 50)}},   // P2
		{Profile: 2, Intervals: []schema.Interval{schema.Closed(30, 50)}},   // P3
		{Profile: 3, Intervals: []schema.Interval{schema.Closed(-30, -20)}}, // P4
		{Profile: 4, Intervals: []schema.Interval{schema.Closed(30, 50)}},   // P5
	}
	dec := Decompose(dom, cons)
	if len(dec.Subranges) != 3 {
		t.Fatalf("got %d subranges: %+v", len(dec.Subranges), dec.Subranges)
	}
	if dec.Subranges[0].Iv.String() != "[-30,-20]" {
		t.Errorf("sr0 = %s", dec.Subranges[0].Iv)
	}
	if dec.Subranges[1].Iv.String() != "[30,35)" {
		t.Errorf("sr1 = %s", dec.Subranges[1].Iv)
	}
	if dec.Subranges[2].Iv.String() != "[35,50]" {
		t.Errorf("sr2 = %s", dec.Subranges[2].Iv)
	}
	if got := dec.Subranges[2].Profiles; len(got) != 4 {
		t.Errorf("[35,50] profiles = %v, want {0,1,2,4}", got)
	}
	if dec.D0Size != 50 {
		t.Errorf("d0 = %g, want 50", dec.D0Size)
	}
	if dec.DomainSize != 80 {
		t.Errorf("d = %g, want 80", dec.DomainSize)
	}
}

// TestDontCareClearsD0: one don't-care profile makes D₀ empty while keeping
// the gap region as the (*) edge.
func TestDontCareClearsD0(t *testing.T) {
	dom := numDom(t, 0, 100)
	cons := []Constraint{
		{Profile: 0, Intervals: []schema.Interval{schema.Closed(35, 50)}},
		{Profile: 1, DontCare: true},
	}
	dec := Decompose(dom, cons)
	if dec.D0Size != 0 {
		t.Errorf("D0Size = %g, want 0 (don't-care covers all)", dec.D0Size)
	}
	if dec.GapSize != 85 {
		t.Errorf("GapSize = %g, want 85", dec.GapSize)
	}
	if len(dec.Star) != 1 || dec.Star[0] != 1 {
		t.Errorf("Star = %v", dec.Star)
	}
}

func TestAllDontCare(t *testing.T) {
	dom := numDom(t, 0, 10)
	dec := Decompose(dom, []Constraint{{Profile: 0, DontCare: true}, {Profile: 1, DontCare: true}})
	if len(dec.Subranges) != 0 || len(dec.Gaps) != 1 {
		t.Fatalf("decomposition = %+v", dec)
	}
	if dec.D0Size != 0 {
		t.Error("don't-care profiles leave no zero-subdomain")
	}
}

func TestNoProfilesMeansAllD0(t *testing.T) {
	dom := numDom(t, 0, 10)
	dec := Decompose(dom, nil)
	if dec.D0Size != 10 || dec.GapSize != 10 {
		t.Errorf("D0 = %g, gaps = %g, want 10", dec.D0Size, dec.GapSize)
	}
}

// TestMergeAdjacent: overlapping ranges from one profile set collapse.
func TestMergeAdjacent(t *testing.T) {
	dom := numDom(t, 0, 100)
	cons := []Constraint{
		{Profile: 0, Intervals: []schema.Interval{schema.Closed(10, 30)}},
		{Profile: 1, Intervals: []schema.Interval{schema.Closed(10, 30)}},
	}
	dec := Decompose(dom, cons)
	if len(dec.Subranges) != 1 {
		t.Fatalf("identical ranges must merge into one subrange, got %+v", dec.Subranges)
	}
	if dec.Subranges[0].Iv.String() != "[10,30]" {
		t.Errorf("merged = %s", dec.Subranges[0].Iv)
	}
}

// TestIntegerGridMerge: adjacent atoms with the same profile set merge even
// when split by an empty open piece.
func TestIntegerGridMerge(t *testing.T) {
	dom := intDom(t, 0, 9)
	cons := []Constraint{
		{Profile: 0, Intervals: []schema.Interval{schema.Closed(3, 3), schema.Closed(4, 4)}},
	}
	dec := Decompose(dom, cons)
	if len(dec.Subranges) != 1 || dec.Subranges[0].Iv.String() != "[3,4]" {
		t.Fatalf("grid merge failed: %+v", dec.Subranges)
	}
	if dec.D0Size != 8 {
		t.Errorf("d0 = %g, want 8 atoms", dec.D0Size)
	}
}

// TestBound2pMinus1: p single-interval profiles produce at most 2p−1 covered
// subranges (the paper's bound), verified on random corpora.
func TestBound2pMinus1(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dom := numDom(t, 0, 1000)
	for trial := 0; trial < 300; trial++ {
		p := 1 + rng.Intn(12)
		cons := make([]Constraint, p)
		for i := range cons {
			lo := rng.Float64() * 900
			hi := lo + rng.Float64()*(1000-lo)
			cons[i] = Constraint{Profile: i, Intervals: []schema.Interval{schema.Closed(lo, hi)}}
		}
		dec := Decompose(dom, cons)
		if len(dec.Subranges) > MaxSubranges(p) {
			t.Fatalf("p=%d produced %d subranges > 2p−1=%d", p, len(dec.Subranges), MaxSubranges(p))
		}
	}
}

// TestPartitionProperties: subranges and gaps are disjoint, ordered, and
// cover every probe point with the correct profile set.
func TestPartitionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	dom := numDom(t, 0, 100)
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.Intn(10)
		cons := make([]Constraint, p)
		type span struct{ lo, hi float64 }
		spans := make([]span, p)
		for i := range cons {
			lo := float64(rng.Intn(90))
			hi := lo + float64(rng.Intn(int(100-lo))+1)
			spans[i] = span{lo, hi}
			cons[i] = Constraint{Profile: i, Intervals: []schema.Interval{schema.Closed(lo, hi)}}
		}
		dec := Decompose(dom, cons)

		// Probe random points: exactly one piece contains each, and its
		// profile set equals the brute-force covering set.
		for probe := 0; probe < 60; probe++ {
			x := rng.Float64() * 100
			holders := 0
			var got []int
			for _, sr := range dec.Subranges {
				if sr.Iv.Contains(x) {
					holders++
					got = sr.Profiles
				}
			}
			for _, g := range dec.Gaps {
				if g.Contains(x) {
					holders++
					got = nil
				}
			}
			if holders != 1 {
				t.Fatalf("x=%g contained in %d pieces", x, holders)
			}
			var want []int
			for i, s := range spans {
				if x >= s.lo && x <= s.hi {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("x=%g: got %v, want %v", x, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("x=%g: got %v, want %v", x, got, want)
				}
			}
		}

		// Measures: gaps + covered = domain size.
		covered := 0.0
		for _, sr := range dec.Subranges {
			covered += sr.Iv.Length()
		}
		if got := covered + dec.GapSize; !schema.AlmostEqual(got, 100, 1e-9) {
			t.Fatalf("covered %g + gaps %g != 100", covered, dec.GapSize)
		}
	}
}

// TestPointPredicates: equality profiles on a continuous domain appear as
// point subranges with zero measure but correct membership.
func TestPointPredicates(t *testing.T) {
	dom := numDom(t, 0, 10)
	cons := []Constraint{
		{Profile: 0, Intervals: []schema.Interval{schema.Point(5)}},
		{Profile: 1, Intervals: []schema.Interval{schema.Point(5)}},
		{Profile: 2, Intervals: []schema.Interval{schema.Point(7)}},
	}
	dec := Decompose(dom, cons)
	if len(dec.Subranges) != 2 {
		t.Fatalf("subranges = %+v", dec.Subranges)
	}
	if len(dec.Subranges[0].Profiles) != 2 {
		t.Errorf("point {5} profiles = %v", dec.Subranges[0].Profiles)
	}
	if !schema.AlmostEqual(dec.D0Size, 10, 1e-9) {
		t.Errorf("d0 = %g (points have measure 0)", dec.D0Size)
	}
}

// TestDecomposeIndexedAgrees: the indexed fast path returns identical
// decompositions.
func TestDecomposeIndexedAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dom := intDom(t, 0, 50)
	for trial := 0; trial < 100; trial++ {
		p := 1 + rng.Intn(8)
		byProfile := make([]Constraint, p)
		alive := make([]int, 0, p)
		var subset []Constraint
		for i := 0; i < p; i++ {
			if rng.Intn(4) == 0 {
				byProfile[i] = Constraint{Profile: i, DontCare: true}
			} else {
				lo := float64(rng.Intn(40))
				byProfile[i] = Constraint{Profile: i, Intervals: []schema.Interval{schema.Closed(lo, lo+float64(rng.Intn(10)))}}
			}
			if rng.Intn(2) == 0 {
				alive = append(alive, i)
				subset = append(subset, byProfile[i])
			}
		}
		a := Decompose(dom, subset)
		b := DecomposeIndexed(dom, byProfile, alive)
		if len(a.Subranges) != len(b.Subranges) || a.D0Size != b.D0Size || a.GapSize != b.GapSize {
			t.Fatalf("indexed mismatch: %+v vs %+v", a, b)
		}
		for i := range a.Subranges {
			if a.Subranges[i].Iv != b.Subranges[i].Iv {
				t.Fatalf("subrange %d: %v vs %v", i, a.Subranges[i].Iv, b.Subranges[i].Iv)
			}
		}
	}
}

func TestKey(t *testing.T) {
	if Key(nil) != "" {
		t.Error("empty key")
	}
	if Key([]int{1, 23, 456}) != "1,23,456" {
		t.Errorf("Key = %q", Key([]int{1, 23, 456}))
	}
}

func TestMaxSubranges(t *testing.T) {
	if MaxSubranges(0) != 0 || MaxSubranges(1) != 1 || MaxSubranges(5) != 9 {
		t.Error("MaxSubranges wrong")
	}
}
