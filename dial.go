package genas

import (
	"time"

	"genas/internal/federation"
	"genas/internal/wire"
)

// Protocol selects a wire protocol generation when dialing a daemon or
// joining a federation.
type Protocol int

// Protocol generations.
const (
	// Auto negotiates: binary v2 frames when the server supports them, the
	// v1 JSON-line protocol otherwise. The default.
	Auto Protocol = iota
	// V1 pins the connection to the JSON-line protocol.
	V1
	// V2 requires the binary frame protocol: Dial fails instead of falling
	// back. On JoinNetwork it behaves like Auto — each peer link negotiates
	// independently, so a mixed-version federation keeps forwarding.
	V2
)

func (p Protocol) wireProto() wire.Proto {
	switch p {
	case V1:
		return wire.ProtoV1
	case V2:
		return wire.ProtoV2
	default:
		return wire.ProtoAuto
	}
}

// DialOption configures Dial and JoinNetwork.
type DialOption func(*dialConfig)

type dialConfig struct {
	timeout time.Duration
	proto   Protocol
	depth   int
	svcOpts []Option
}

// WithDialTimeout bounds the TCP connect and protocol handshake, and
// becomes the default per-request timeout of the returned Client (zero
// means no timeout).
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithProtocol pins or negotiates the wire protocol generation (default
// Auto).
func WithProtocol(p Protocol) DialOption {
	return func(c *dialConfig) { c.proto = p }
}

// WithPipelineDepth caps the in-flight v2 frames per batched publish
// (default wire.DefaultPipelineDepth; v1 connections always serialize).
func WithPipelineDepth(n int) DialOption {
	return func(c *dialConfig) { c.depth = n }
}

// WithServiceOptions forwards service construction options to the local
// broker JoinNetwork creates. Dial ignores it (there is no local broker).
func WithServiceOptions(opts ...Option) DialOption {
	return func(c *dialConfig) { c.svcOpts = append(c.svcOpts, opts...) }
}

// Client is a connection to a remote genasd daemon. It is safe for
// concurrent use. On a negotiated v2 connection events travel as binary
// schema-order vectors and batched publishes pipeline; on v1 the JSON-line
// protocol is spoken unchanged.
type Client struct {
	c       *wire.Client
	timeout time.Duration
	notifs  chan RemoteNotification
}

// RemoteNotification is one matched event delivered by a remote daemon.
type RemoteNotification struct {
	// Profile is the matched subscription's id.
	Profile string
	// Seq is the daemon's sequence number for the event.
	Seq uint64
	// Event is the payload as attribute name → value.
	Event map[string]float64
}

// RemoteStats is a remote daemon's counter snapshot (the wire twin of
// Stats, plus federation and protocol counters).
type RemoteStats struct {
	Subscriptions int
	Published     uint64
	Delivered     uint64
	Dropped       uint64
	FilterEvents  uint64
	FilterOps     uint64
	MeanOps       float64
	Restructures  int
	// Aggregation counters (aggregated daemons only).
	Aggregated           bool
	CanonicalNodes       int
	CanonicalRoots       int
	PosetDepth           int
	ProfilesPerCanonical float64
	// Federation counters (federated daemons only).
	Node         string
	Peers        int
	Forwarded    uint64
	Filtered     uint64
	ProtoV2Peers int
	// Wire-level counters: mean received bytes per published event and
	// request frames observed queued behind the one being served.
	BytesPerEventWire float64
	FramesPipelined   uint64
}

// Dial connects to a genasd daemon. By default the protocol is negotiated:
// a v2-capable daemon upgrades the connection to binary frames, any other
// daemon is spoken to in v1 JSON lines. Options pin the protocol, bound the
// handshake and set the pipelining depth.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	var cfg dialConfig
	for _, o := range opts {
		o(&cfg)
	}
	wc, err := wire.DialWith(addr, wire.DialConfig{
		Timeout:       cfg.timeout,
		Proto:         cfg.proto.wireProto(),
		PipelineDepth: cfg.depth,
	})
	if err != nil {
		return nil, err
	}
	c := &Client{c: wc, timeout: cfg.timeout, notifs: make(chan RemoteNotification, 256)}
	go c.convertNotifications()
	return c, nil
}

// convertNotifications adapts the wire notification stream (maps on v1,
// slot vectors on v2) to RemoteNotification values.
func (c *Client) convertNotifications() {
	for resp := range c.c.Notifications() {
		n := RemoteNotification{Profile: resp.Profile, Seq: resp.Seq, Event: c.c.EventMap(resp)}
		select {
		case c.notifs <- n:
		default: // drop when the consumer lags; mirrors broker policy
		}
	}
	close(c.notifs)
}

// Protocol reports the connection's negotiated protocol generation (V1 or
// V2).
func (c *Client) Protocol() Protocol {
	if c.c.Proto() >= wire.ProtoV2 {
		return V2
	}
	return V1
}

// Notifications returns the inbound notification stream. The channel closes
// when the connection drops.
func (c *Client) Notifications() <-chan RemoteNotification { return c.notifs }

// Ping round-trips a ping.
func (c *Client) Ping() error { return c.c.Ping(c.timeout) }

// Subscribe registers a profile expression under id on the remote daemon.
func (c *Client) Subscribe(id, profileExpr string, priority float64) error {
	return c.c.Subscribe(id, profileExpr, priority, c.timeout)
}

// Unsubscribe removes a subscription registered on this connection.
func (c *Client) Unsubscribe(id string) error {
	return c.c.Unsubscribe(id, c.timeout)
}

// Publish posts an event given as attribute name → value and returns the
// number of matched profiles.
func (c *Client) Publish(values map[string]float64) (int, error) {
	return c.c.Publish(values, c.timeout)
}

// PublishValues posts one event as schema-order attribute values — the hot
// path: on a v2 connection this is one small binary frame and no map is
// built on either end.
func (c *Client) PublishValues(vals ...float64) (int, error) {
	return c.c.PublishVals(vals, c.timeout)
}

// PublishBatch posts several events in one request and returns per-event
// match counts. Oversized batches split transparently; on v2 the chunks
// pipeline.
func (c *Client) PublishBatch(events []map[string]float64) ([]int, error) {
	return c.c.PublishBatch(events, c.timeout)
}

// Quench asks whether the region [lo,hi] of attr has no subscribers.
func (c *Client) Quench(attr string, lo, hi float64) (bool, error) {
	return c.c.Quench(attr, lo, hi, c.timeout)
}

// Stats fetches the daemon's counter snapshot.
func (c *Client) Stats() (RemoteStats, error) {
	p, err := c.c.Stats(c.timeout)
	if err != nil {
		return RemoteStats{}, err
	}
	return RemoteStats{
		Subscriptions:        p.Subscriptions,
		Published:            p.Published,
		Delivered:            p.Delivered,
		Dropped:              p.Dropped,
		FilterEvents:         p.FilterEvents,
		FilterOps:            p.FilterOps,
		MeanOps:              p.MeanOps,
		Restructures:         p.Restructures,
		Aggregated:           p.Aggregated,
		CanonicalNodes:       p.CanonicalNodes,
		CanonicalRoots:       p.CanonicalRoots,
		PosetDepth:           p.PosetDepth,
		ProfilesPerCanonical: p.ProfilesPerCanonical,
		Node:                 p.Node,
		Peers:                p.Peers,
		Forwarded:            p.Forwarded,
		Filtered:             p.Filtered,
		ProtoV2Peers:         p.ProtoV2Peers,
		BytesPerEventWire:    p.BytesPerEventWire,
		FramesPipelined:      p.FramesPipelined,
	}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.c.Close() }

// JoinNetwork joins a wire-level broker federation: it creates a local
// service over sch named node and dials each peer genasd daemon (which must
// be running with -node, and share the schema). The overlay must stay
// acyclic, exactly like Network's topology. Initial dials are synchronous —
// an unreachable peer fails fast — and dropped links reconnect in the
// background with route replay. Peer links negotiate the wire protocol per
// hop (WithProtocol(V1) pins them to JSON lines); WithServiceOptions
// configures the local broker.
func JoinNetwork(sch *Schema, node string, peers []string, opts ...DialOption) (*Federation, error) {
	var cfg dialConfig
	for _, o := range opts {
		o(&cfg)
	}
	svc, err := NewService(sch, cfg.svcOpts...)
	if err != nil {
		return nil, err
	}
	fed, err := federation.New(svc.brk, federation.Options{
		Node:        node,
		Covering:    true,
		DialTimeout: cfg.timeout,
		Proto:       cfg.proto.wireProto(),
	})
	if err != nil {
		svc.Close()
		return nil, err
	}
	f := &Federation{svc: svc, fed: fed}
	for _, addr := range peers {
		if err := fed.Dial(addr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}
