package genas

import (
	"context"
	"errors"
	"sync"

	"genas/internal/broker"
)

// errHandlerMode reports channel access on a handler-driven subscription.
var errHandlerMode = errors.New("genas: subscription delivers via SubHandler; C and Next are unavailable")

// SubOption configures one subscription at Subscribe time.
type SubOption func(*subOptions) error

type subOptions struct {
	broker   broker.SubOptions
	priority float64
	handler  func(Notification)
}

// SubBuffer sets this subscription's notification buffer (overriding the
// service default).
func SubBuffer(n int) SubOption {
	return func(o *subOptions) error {
		if n <= 0 {
			return ErrBadBuffer
		}
		o.broker.Buffer = n
		return nil
	}
}

// SubPriority sets the profile's user-centric priority weight (higher is
// more important; the paper's Measure V3 favors high-priority profiles).
func SubPriority(w float64) SubOption {
	return func(o *subOptions) error {
		o.priority = w
		return nil
	}
}

// SubHandler delivers notifications by calling fn from a dedicated goroutine
// instead of over a channel: C returns nil and Next fails. fn runs
// sequentially per subscription; a slow handler fills the buffer like a slow
// channel reader would, so combine with SubBuffer/SubDropOldest/SubBlocking
// to pick the overload behavior.
func SubHandler(fn func(Notification)) SubOption {
	return func(o *subOptions) error {
		if fn == nil {
			return errors.New("genas: nil SubHandler")
		}
		o.handler = fn
		return nil
	}
}

// SubDropOldest evicts the oldest buffered notification when the buffer is
// full, so a lagging subscriber sees the freshest events instead of the
// stalest (the default drops the incoming notification).
func SubDropOldest() SubOption {
	return func(o *subOptions) error {
		o.broker.Policy = broker.DropOldest
		return nil
	}
}

// SubBlocking stalls publishers while this subscription's buffer is full —
// opt-in backpressure. A subscriber that stops reading stalls every publisher
// until it drains, unsubscribes, or the publisher's PublishCtx context is
// canceled; prefer the drop policies unless the consumer is trusted.
func SubBlocking() SubOption {
	return func(o *subOptions) error {
		o.broker.Policy = broker.Block
		return nil
	}
}

// Subscription is one live registration. Notifications arrive on C (or via
// Next), unless the subscription was created with SubHandler, in which case
// the callback receives them. Close unsubscribes.
type Subscription struct {
	sub     *broker.Subscription
	stop    func() error
	handled bool

	closeOnce sync.Once
	closeErr  error
}

func newSubscription(sub *broker.Subscription, stop func() error, o *subOptions) *Subscription {
	s := &Subscription{sub: sub, stop: stop}
	if o != nil && o.handler != nil {
		s.handled = true
		go func(fn func(Notification)) {
			for n := range sub.C() {
				fn(n)
			}
		}(o.handler)
	}
	return s
}

// ID returns the subscription id.
func (s *Subscription) ID() string { return string(s.sub.ID()) }

// Profile returns the subscribed profile.
func (s *Subscription) Profile() *Profile { return s.sub.Profile() }

// C returns the notification channel. It closes when the subscription ends
// (Close, Unsubscribe, or service shutdown). Nil for handler-driven
// subscriptions.
func (s *Subscription) C() <-chan Notification {
	if s.handled {
		return nil
	}
	return s.sub.C()
}

// Next blocks until the next notification, the context's cancellation, or
// the end of the subscription (reported as ErrClosed).
func (s *Subscription) Next(ctx context.Context) (Notification, error) {
	if s.handled {
		//genas:allow senterr API misuse (mixing handler mode with Next), not a matchable runtime condition
		return Notification{}, errHandlerMode
	}
	select {
	case n, ok := <-s.sub.C():
		if !ok {
			return Notification{}, ErrClosed
		}
		return n, nil
	case <-ctx.Done():
		return Notification{}, ctx.Err()
	}
}

// Delivered returns how many notifications reached this subscription's
// buffer.
func (s *Subscription) Delivered() uint64 { return s.sub.Delivered() }

// Dropped returns how many notifications were discarded because the
// subscriber lagged (including SubDropOldest evictions).
func (s *Subscription) Dropped() uint64 { return s.sub.Dropped() }

// Close unsubscribes. Idempotent; the notification channel closes and a
// pending handler goroutine drains out.
func (s *Subscription) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.stop() })
	return s.closeErr
}
