package genas

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateSurface = flag.Bool("update", false, "rewrite API.txt with the current public surface")

// TestAPISurface is the apidiff gate: it type-checks the package and dumps
// every exported object — functions and methods with full signatures, vars
// and consts with their (possibly inferred) types, types with their exported
// fields and method sets — and compares the dump against the committed
// API.txt. Any change to the public surface fails until API.txt is
// regenerated with `go test -run TestAPISurface -update .`, making surface
// changes deliberate, reviewed events rather than accidents. Because the
// dump goes through go/types, re-exported function values (NewSchema,
// ParseSchema, …) and aliases carry the signature of their target: a
// signature change anywhere beneath the surface shows up here.
func TestAPISurface(t *testing.T) {
	got, err := publicSurface(".")
	if err != nil {
		t.Fatal(err)
	}
	if *updateSurface {
		if err := os.WriteFile("API.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("API.txt updated")
		return
	}
	wantBytes, err := os.ReadFile("API.txt")
	if err != nil {
		t.Fatalf("missing API.txt golden (regenerate with -update): %v", err)
	}
	want := string(wantBytes)
	if got != want {
		t.Errorf("public API surface changed; if intentional, regenerate with `go test -run TestAPISurface -update .` and document the change in MIGRATION.md.\n--- API.txt\n+++ current\n%s", surfaceDiff(want, got))
	}
}

// publicSurface type-checks the package in dir and renders its exported
// objects as a sorted, newline-separated list.
func publicSurface(dir string) (string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return "", err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("genas", fset, files, nil)
	if err != nil {
		return "", err
	}
	qual := types.RelativeTo(pkg)
	var lines []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			lines = append(lines, "func "+o.Name()+strings.TrimPrefix(types.TypeString(o.Type(), qual), "func"))
		case *types.Var:
			lines = append(lines, "var "+o.Name()+" "+types.TypeString(o.Type(), qual))
		case *types.Const:
			lines = append(lines, "const "+o.Name()+" "+types.TypeString(o.Type(), qual))
		case *types.TypeName:
			lines = append(lines, typeLines(o, qual)...)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

// typeLines renders one exported type: its declaration (alias target, or
// underlying kind with exported struct fields) and its exported methods.
func typeLines(tn *types.TypeName, qual types.Qualifier) []string {
	var lines []string
	name := tn.Name()
	if tn.IsAlias() {
		lines = append(lines, "type "+name+" = "+types.TypeString(tn.Type(), qual))
		// Alias method sets belong to the target type; changes there are
		// caught by the target's signature in the alias line's package.
		return lines
	}
	switch u := tn.Type().Underlying().(type) {
	case *types.Struct:
		var fields []string
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			fields = append(fields, f.Name()+" "+types.TypeString(f.Type(), qual))
		}
		lines = append(lines, "type "+name+" struct { "+strings.Join(fields, "; ")+" }")
	default:
		lines = append(lines, "type "+name+" "+types.TypeString(u, qual))
	}
	// Exported methods of *T cover both value and pointer receivers.
	mset := types.NewMethodSet(types.NewPointer(tn.Type()))
	for i := 0; i < mset.Len(); i++ {
		m := mset.At(i).Obj()
		if !m.Exported() {
			continue
		}
		lines = append(lines, "method ("+name+") "+m.Name()+strings.TrimPrefix(types.TypeString(m.Type(), qual), "func"))
	}
	return lines
}

// surfaceDiff renders a minimal line diff: lines only in want (-) and only
// in got (+).
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "-%s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+%s\n", l)
		}
	}
	return b.String()
}
