package genas

import (
	"context"
	"errors"
	"fmt"
	"time"

	"genas/internal/event"
)

// EventBuilder assembles events without allocating per event: attribute
// values are written into a fixed positional buffer (by name, by label, or
// all at once with Values), and Publish hands that buffer to the matching
// engine directly — no map, and no event value unless at least one profile
// matched. A builder is reusable: Publish resets it for the next event.
//
//	eb := svc.NewEvent()
//	for reading := range sensor {
//		n, err := eb.Set("temperature", reading.T).Set("humidity", reading.H).Publish()
//		…
//	}
//
// A builder is not safe for concurrent use; give each publisher goroutine
// its own.
type EventBuilder struct {
	sch  *Schema
	svc  *Service // nil for schema-only builders: Event works, Publish fails
	vals []float64
	seen []bool
	at   time.Time
	err  error
}

// NewEvent returns an event builder over the schema. Builders from this
// constructor can Build events but not Publish them; use Service.NewEvent to
// bind one to a service (which also applies the service's WithDefaults).
func NewEvent(sch *Schema) *EventBuilder {
	return &EventBuilder{
		sch:  sch,
		vals: make([]float64, sch.N()),
		seen: make([]bool, sch.N()),
	}
}

// NewEvent returns an event builder bound to the service: Publish posts to
// this service, and attributes omitted from an event fall back to the
// service's WithDefaults values.
func (s *Service) NewEvent() *EventBuilder {
	eb := NewEvent(s.sch)
	eb.svc = s
	return eb
}

// Set assigns one attribute by name.
//
//genas:hotpath
func (b *EventBuilder) Set(name string, v float64) *EventBuilder {
	if b.err != nil {
		return b
	}
	i, err := b.sch.Index(name)
	if err != nil {
		b.err = err
		return b
	}
	b.vals[i] = v
	b.seen[i] = true
	return b
}

// SetLabel assigns one categorical attribute by label.
func (b *EventBuilder) SetLabel(name, label string) *EventBuilder {
	if b.err != nil {
		return b
	}
	i, err := b.sch.Index(name)
	if err != nil {
		b.err = err
		return b
	}
	c, err := labelCode(b.sch.At(i).Domain, label)
	if err != nil {
		b.err = err
		return b
	}
	b.vals[i] = c
	b.seen[i] = true
	return b
}

// Values assigns every attribute positionally in schema order — the fastest
// assembly path for publishers that already hold values in schema order.
//
//genas:hotpath
func (b *EventBuilder) Values(vals ...float64) *EventBuilder {
	if b.err != nil {
		return b
	}
	if len(vals) != b.sch.N() {
		//genas:allow hotpath cold arity-error branch; well-formed events assign without allocating
		b.err = fmt.Errorf("%w: got %d values for %d attributes", event.ErrArity, len(vals), b.sch.N())
		return b
	}
	copy(b.vals, vals)
	for i := range b.seen {
		b.seen[i] = true
	}
	return b
}

// At sets the event occurrence time (default: publish time). Timestamped
// events take the copying publish path, since the delivered event must
// outlive the builder's buffer.
func (b *EventBuilder) At(t time.Time) *EventBuilder {
	b.at = t
	return b
}

// Reset clears the builder for the next event. Publish resets implicitly.
func (b *EventBuilder) Reset() *EventBuilder {
	for i := range b.seen {
		b.seen[i] = false
	}
	b.at = time.Time{}
	b.err = nil
	return b
}

// finalize applies defaults and validates the assembled values in place.
//
//genas:hotpath
func (b *EventBuilder) finalize() error {
	if b.err != nil {
		return b.err
	}
	var d *event.Defaults
	if b.svc != nil {
		d = b.svc.defaults
	}
	if missing := d.Fill(b.vals, b.seen); missing > 0 {
		//genas:allow hotpath cold arity-error branch; fully-specified events skip it
		return fmt.Errorf("%w: event specifies %d of %d attributes",
			event.ErrArity, b.sch.N()-missing, b.sch.N())
	}
	for i := range b.vals {
		if err := b.sch.Validate(i, b.vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// Event returns the assembled event as an owned value (the builder may be
// reused afterwards). It does not reset the builder.
func (b *EventBuilder) Event() (Event, error) {
	if err := b.finalize(); err != nil {
		return Event{}, err
	}
	ev, err := event.New(b.sch, b.vals...)
	if err != nil {
		return Event{}, err
	}
	ev.Time = b.at
	return ev, nil
}

// Publish posts the assembled event to the bound service and resets the
// builder. Untimestamped events take the zero-allocation path: the buffer is
// only read during matching and copied only when a profile matched.
func (b *EventBuilder) Publish() (int, error) {
	return b.publish(nil)
}

// PublishCtx is Publish with a cancellation context (see Service.PublishCtx).
func (b *EventBuilder) PublishCtx(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		b.Reset()
		return 0, err
	}
	return b.publish(ctx)
}

// publish is the shared Publish/PublishCtx body. Untimestamped events hand
// the builder's buffer straight to the broker's values path; timestamped
// ones copy (the delivered event must outlive the buffer).
//
//genas:hotpath
func (b *EventBuilder) publish(ctx context.Context) (int, error) {
	defer b.Reset()
	if b.svc == nil {
		//genas:allow senterr API misuse (zero-value builder), not a runtime condition callers should errors.Is-match
		return 0, errors.New("genas: event builder is not bound to a service; use Service.NewEvent")
	}
	if err := b.finalize(); err != nil {
		return 0, err
	}
	if b.at.IsZero() {
		if ctx != nil {
			return b.svc.brk.PublishValuesCtx(ctx, b.vals)
		}
		return b.svc.brk.PublishValues(b.vals)
	}
	ev := event.Event{Vals: append([]float64(nil), b.vals...), Time: b.at}
	if ctx != nil {
		return b.svc.brk.PublishCtx(ctx, ev)
	}
	return b.svc.brk.Publish(ev)
}
