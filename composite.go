package genas

import (
	"fmt"

	"genas/internal/broker"
	"genas/internal/composite"
)

// Composite event support (paper §5: "We will extend the filter to handle
// composite events"). A composite monitor subscribes a set of primitive
// profiles and evaluates temporal expressions — sequence, conjunction,
// disjunction, counting — over their notification stream.

// Re-exported composite expression constructors.
type (
	// CompositeExpr is a temporal expression over primitive profile ids.
	CompositeExpr = composite.Expr
	// CompositeEvent is one fired composite detection.
	CompositeEvent = composite.Detection
)

// Composite expression constructors re-exported from internal/composite.
var (
	// Prim matches every notification of the given primitive profile id.
	Prim = composite.Prim
	// Seq matches l followed by r within a window.
	Seq = composite.Seq
	// AndWithin matches l and r in any order within a window.
	AndWithin = composite.And
	// OrElse matches either operand.
	OrElse = composite.Or
	// Count matches n occurrences within a sliding window.
	Count = composite.Count
)

// CompositeMonitor owns the primitive subscriptions and the evaluation
// goroutine of one composite expression set.
type CompositeMonitor struct {
	out   chan CompositeEvent
	group *broker.Group
}

// MonitorComposite subscribes the primitive profiles (id → profile-language
// expression) and evaluates the named composite expressions over their
// notifications. Detections arrive on C(); call Stop to tear the monitor
// down. Expression Prim ids must reference keys of primitives.
//
// The primitives register as one broker group sharing an ordered delivery
// channel, so the sequence operator observes notifications exactly in
// publish order (concurrent publishers are ordered by whoever entered the
// broker first).
func (s *Service) MonitorComposite(
	primitives map[string]string,
	exprs map[string]CompositeExpr,
	buffer int,
) (*CompositeMonitor, error) {
	if len(primitives) == 0 {
		return nil, fmt.Errorf("genas: composite monitor needs primitive profiles: %w", ErrBadProfile)
	}
	if buffer <= 0 {
		buffer = 64
	}
	det, err := composite.NewDetector(exprs)
	if err != nil {
		return nil, err
	}

	profiles := make([]*Profile, 0, len(primitives))
	for id, expr := range primitives {
		p, err := s.ParseProfile(id, expr)
		if err != nil {
			return nil, fmt.Errorf("genas: composite primitive %s: %w", id, err)
		}
		profiles = append(profiles, p)
	}
	group, err := s.brk.SubscribeGroup(buffer, profiles...)
	if err != nil {
		return nil, err
	}

	m := &CompositeMonitor{
		out:   make(chan CompositeEvent, buffer),
		group: group,
	}
	// Evaluator: the detector is single-goroutine by design; the group
	// channel delivers notifications in publish order.
	go func() {
		defer close(m.out)
		for n := range group.C() {
			for _, d := range det.Feed(n.Profile, n.Event.Time) {
				select {
				case m.out <- d:
				default: // slow consumer: drop, mirroring broker policy
				}
			}
		}
	}()
	return m, nil
}

// C returns the detection stream. It closes after Stop.
func (m *CompositeMonitor) C() <-chan CompositeEvent { return m.out }

// Stop unsubscribes the primitive profiles and shuts the evaluator down.
func (m *CompositeMonitor) Stop() { m.group.Close() }
