package genas

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"genas/internal/hook"
	"genas/internal/wire"
)

// startPlainDaemon boots an in-process genasd twin without federation, with
// an optional protocol ceiling (maxV1 simulates an un-upgraded daemon).
func startPlainDaemon(t *testing.T, sch *Schema, maxV1 bool) (addr string) {
	t.Helper()
	svc, err := NewService(sch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := wire.NewServer(hook.BrokerOf(svc), nil)
	if maxV1 {
		srv.SetMaxProto(wire.ProtoV1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(ctx, ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

// TestDialClient drives the redesigned client surface end to end over a
// negotiated v2 connection: typed options, the positional publish hot path,
// batched publishes, notifications and the protocol counters in Stats.
func TestDialClient(t *testing.T) {
	sch := monitoringSchema(t)
	addr := startPlainDaemon(t, sch, false)

	c, err := Dial(addr, WithDialTimeout(5*time.Second), WithPipelineDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.Protocol() != V2 {
		t.Fatalf("Protocol() = %v, want V2", c.Protocol())
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("hot", "profile(temperature >= 35)", 1); err != nil {
		t.Fatal(err)
	}

	// Map publish, positional publish and a batch — all against the same
	// subscription.
	if matched, err := c.Publish(map[string]float64{"temperature": 41, "humidity": 10, "radiation": 3}); err != nil || matched != 1 {
		t.Fatalf("Publish = %d %v", matched, err)
	}
	if matched, err := c.PublishValues(45, 10, 3); err != nil || matched != 1 {
		t.Fatalf("PublishValues = %d %v", matched, err)
	}
	counts, err := c.PublishBatch([]map[string]float64{
		{"temperature": 40, "humidity": 1, "radiation": 1},
		{"temperature": 0, "humidity": 1, "radiation": 1},
	})
	if err != nil || len(counts) != 2 || counts[0] != 1 || counts[1] != 0 {
		t.Fatalf("PublishBatch = %v %v", counts, err)
	}

	// Three matches, three notifications — as name→value maps regardless of
	// the wire encoding.
	for i := 0; i < 3; i++ {
		select {
		case n := <-c.Notifications():
			if n.Profile != "hot" || n.Event["temperature"] < 35 {
				t.Fatalf("notification = %+v", n)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("notification %d never arrived", i)
		}
	}

	if q, err := c.Quench("temperature", -30, 0); err != nil || !q {
		t.Fatalf("Quench = %v %v", q, err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Subscriptions != 1 || st.Published != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesPerEventWire <= 0 {
		t.Errorf("BytesPerEventWire = %g, want > 0", st.BytesPerEventWire)
	}
	if err := c.Unsubscribe("hot"); err != nil {
		t.Fatal(err)
	}
}

// TestDialProtocolPinning pins WithProtocol's three modes against old and
// new daemons.
func TestDialProtocolPinning(t *testing.T) {
	sch := monitoringSchema(t)
	v2addr := startPlainDaemon(t, sch, false)
	v1addr := startPlainDaemon(t, sch, true)

	// V1 pins even against a v2-capable daemon.
	c, err := Dial(v2addr, WithProtocol(V1), WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if c.Protocol() != V1 {
		t.Errorf("pinned V1 negotiated %v", c.Protocol())
	}
	_ = c.Close()

	// Auto falls back cleanly against an old daemon.
	c, err = Dial(v1addr, WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if c.Protocol() != V1 {
		t.Errorf("Auto against v1 daemon negotiated %v", c.Protocol())
	}
	if matched, err := c.PublishValues(40, 10, 3); err != nil || matched != 0 {
		t.Fatalf("PublishValues over v1 = %d %v", matched, err)
	}
	_ = c.Close()

	// Required V2 refuses the old daemon instead of degrading.
	if _, err := Dial(v1addr, WithProtocol(V2), WithDialTimeout(5*time.Second)); err == nil {
		t.Error("WithProtocol(V2) against a v1 daemon must fail")
	}
}

// TestJoinNetworkProtocol checks the peer-link side of the dial options:
// JoinNetwork negotiates v2 links by default and WithProtocol(V1) pins them
// to JSON lines, visible through FederationStats.ProtoV2Peers.
func TestJoinNetworkProtocol(t *testing.T) {
	sch := monitoringSchema(t)
	addr := startFedDaemon(t, "daemon", sch)

	f, err := JoinNetwork(sch, "leaf", []string{addr},
		WithDialTimeout(5*time.Second), WithServiceOptions(WithShards(1)))
	if err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.Peers != 1 || st.ProtoV2Peers != 1 {
		t.Errorf("v2 link stats = peers %d v2 %d, want 1/1", st.Peers, st.ProtoV2Peers)
	}
	f.Close()

	f, err = JoinNetwork(sch, "leaf2", []string{addr}, WithProtocol(V1))
	if err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.Peers != 1 || st.ProtoV2Peers != 0 {
		t.Errorf("pinned-v1 link stats = peers %d v2 %d, want 1/0", st.Peers, st.ProtoV2Peers)
	}
	f.Close()
}
