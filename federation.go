package genas

import (
	"genas/internal/federation"
	"genas/internal/predicate"
)

// Federation is a local broker joined into a wire-level overlay of genasd
// daemons: the process-level twin of Network. Local subscriptions propagate
// to the peer daemons as routes, events published here cross a TCP link only
// when that link's routing filter matches, and events published anywhere in
// the federation are delivered to matching local subscriptions.
type Federation struct {
	svc *Service
	fed *federation.Fed
}

// FederationStats is the counter snapshot of one federated broker.
type FederationStats struct {
	// Node is this broker's overlay name.
	Node string
	// Peers counts live peer links.
	Peers int
	// Forwarded counts events this broker sent over a peer link; Filtered
	// counts link crossings avoided by early rejection at its links.
	Forwarded, Filtered uint64
	// ProtoV2Peers counts peer links that negotiated the binary v2 wire
	// protocol (the rest speak v1 JSON lines).
	ProtoV2Peers int
	// Local is the local broker's counter snapshot.
	Local Stats
}

// DialNetwork joins a wire-level broker federation with default dial
// behavior.
//
// Deprecated: use JoinNetwork, which takes typed DialOptions
// (WithProtocol, WithDialTimeout, WithServiceOptions) instead of positional
// service options. DialNetwork(sch, node, peers, opts...) is exactly
// JoinNetwork(sch, node, peers, WithServiceOptions(opts...)).
func DialNetwork(sch *Schema, node string, peers []string, opts ...Option) (*Federation, error) {
	return JoinNetwork(sch, node, peers, WithServiceOptions(opts...))
}

// Schema returns the federation's schema.
func (f *Federation) Schema() *Schema { return f.svc.Schema() }

// Subscribe parses a profile-language expression, registers it locally and
// announces it to the federation, so matching events published at any peer
// daemon reach this subscription. Profile ids must be unique across the
// whole federation.
func (f *Federation) Subscribe(id, profileExpr string, opts ...SubOption) (*Subscription, error) {
	p, err := predicate.Parse(f.svc.sch, predicate.ID(id), profileExpr)
	if err != nil {
		return nil, err
	}
	return f.SubscribeProfile(p, opts...)
}

// SubscribeProfile is Subscribe for an already-built profile (from
// NewProfile's builder or ParseProfile).
func (f *Federation) SubscribeProfile(p *Profile, opts ...SubOption) (*Subscription, error) {
	sub, err := f.svc.subscribeWith(p, opts, func(id predicate.ID) error {
		if err := f.svc.brk.Unsubscribe(id); err != nil {
			return err
		}
		f.fed.ProfileRemoved(id)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Announce the registered profile (the priority-applied clone, if any).
	f.fed.ProfileAdded(sub.Profile())
	return sub, nil
}

// Unsubscribe removes a local subscription and withdraws its route from the
// federation.
func (f *Federation) Unsubscribe(id string) error {
	if err := f.svc.brk.Unsubscribe(predicate.ID(id)); err != nil {
		return err
	}
	f.fed.ProfileRemoved(predicate.ID(id))
	return nil
}

// Publish posts an event given as attribute name → value: it is delivered to
// matching local subscriptions and forwarded over every peer link whose
// routing filter matches. It returns the number of local matches (remote
// delivery is asynchronous).
func (f *Federation) Publish(values map[string]float64) (int, error) {
	ev, err := f.svc.Event(values)
	if err != nil {
		return 0, err
	}
	return f.PublishEvent(ev)
}

// PublishEvent is Publish for a prebuilt event.
func (f *Federation) PublishEvent(ev Event) (int, error) {
	n, err := f.svc.brk.Publish(ev)
	if err != nil {
		return 0, err
	}
	f.fed.EventPublished(ev)
	return n, nil
}

// Stats returns the federation counter snapshot.
func (f *Federation) Stats() FederationStats {
	node, peers, forwarded, filtered := f.fed.Stats()
	return FederationStats{
		Node:         node,
		Peers:        peers,
		Forwarded:    forwarded,
		Filtered:     filtered,
		ProtoV2Peers: f.fed.ProtoV2Peers(),
		Local:        f.svc.Stats(),
	}
}

// Close leaves the federation (tearing down every peer link) and shuts the
// local service down.
func (f *Federation) Close() {
	f.fed.Close()
	f.svc.Close()
}
