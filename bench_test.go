package genas

// One benchmark per table and figure of the paper's evaluation (§4.3), plus
// the ablations called out in DESIGN.md §4. The figure benchmarks report the
// paper's metric — average comparison operations per event — via
// b.ReportMetric, so `go test -bench` regenerates the numbers EXPERIMENTS.md
// records; cmd/reproduce prints the same data as full tables.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"genas/internal/dist"
	"genas/internal/event"
	"genas/internal/experiments"
	"genas/internal/matchers"
	"genas/internal/predicate"
	"genas/internal/routing"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/tree"
)

const benchSeed = 1

// reportSeries publishes every cell of a figure as a named metric.
func reportSeries(b *testing.B, tab experiments.Table) {
	b.Helper()
	for _, s := range tab.Series {
		sum := 0.0
		for _, v := range s.Values {
			sum += v
		}
		b.ReportMetric(sum/float64(len(s.Values)), "ops/event:"+sanitize(s.Label))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '*':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig4a regenerates Fig. 4(a): value reordering by Measure V1 vs
// natural order vs binary search (scenario TV4).
func BenchmarkFig4a(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Fig4a(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, tab)
}

// BenchmarkFig4b regenerates Fig. 4(b): Measures V1–V3 vs binary search.
func BenchmarkFig4b(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Fig4b(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, tab)
}

// BenchmarkFig5a/b/c regenerate Fig. 5: operations per event, per profile,
// and per event and profile.
func BenchmarkFig5a(b *testing.B) {
	benchFigure(b, experiments.Fig5a)
}

func BenchmarkFig5b(b *testing.B) {
	benchFigure(b, experiments.Fig5b)
}

func BenchmarkFig5c(b *testing.B) {
	benchFigure(b, experiments.Fig5c)
}

// BenchmarkFig6a regenerates Fig. 6(a): attribute reordering with wide
// selectivity differences (TA1).
func BenchmarkFig6a(b *testing.B) {
	benchFigure(b, experiments.Fig6a)
}

// BenchmarkFig6b regenerates Fig. 6(b): small selectivity differences (TA2).
func BenchmarkFig6b(b *testing.B) {
	benchFigure(b, experiments.Fig6b)
}

func benchFigure(b *testing.B, f func(int64) (experiments.Table, error)) {
	b.Helper()
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = f(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, tab)
}

// BenchmarkTV1 measures scenario TV1: tree creation over 10,000 profiles
// plus events until 95% precision.
func BenchmarkTV1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TV1(3, 10000, "95% low", "equal", "event", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanOps, "ops/event")
		b.ReportMetric(float64(r.BuildTime.Milliseconds()), "build-ms")
	}
}

// BenchmarkTV2 measures scenario TV2 (prebuilt tree, precision stop).
func BenchmarkTV2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TV2(3, 10000, "95% low", "equal", "event", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanOps, "ops/event")
	}
}

// BenchmarkTV3 measures scenario TV3 (one attribute, 4,000 events).
func BenchmarkTV3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TV3(2000, "95% low", "equal", "event", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanOps, "ops/event")
	}
}

// BenchmarkTV4 measures scenario TV4 (analytic, Eq. 2).
func BenchmarkTV4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TV4(2000, "95% low", "equal", "event", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanOps, "ops/event")
	}
}

// --- Ablations (DESIGN.md §4) ---------------------------------------------------

// benchWorkload builds a shared matching workload: p equality profiles over
// a peaked profile distribution, events from a peaked event distribution.
func benchWorkload(p int) (*schema.Schema, []*predicate.Profile, []dist.Dist, [][]float64) {
	s := experiments.Schema1D()
	rng := rand.New(rand.NewSource(benchSeed))
	pd := dist.New(dist.PeakLow(0.8), s.At(0).Domain)
	ed := []dist.Dist{dist.New(dist.PeakLow(0.9), s.At(0).Domain)}
	profiles := experiments.GenProfiles1D(s, p, pd, rng)
	events := make([][]float64, 4096)
	for i := range events {
		events[i] = []float64{ed[0].Sample(rng)}
	}
	return s, profiles, ed, events
}

// BenchmarkAblationNodeSearch contrasts the three within-node strategies on
// the same ordered tree: linear with early termination, linear without, and
// binary search.
func BenchmarkAblationNodeSearch(b *testing.B) {
	s, profiles, ed, events := benchWorkload(2000)
	for _, strategy := range []tree.Search{tree.SearchLinear, tree.SearchLinearNoStop, tree.SearchBinary, tree.SearchInterpolation, tree.SearchHash} {
		b.Run(strategy.String(), func(b *testing.B) {
			tr, err := tree.Build(s, profiles, tree.WithSearch(strategy))
			if err != nil {
				b.Fatal(err)
			}
			tr.ApplyValueOrder(selectivity.V1(ed, true))
			b.ResetTimer()
			ops := 0
			for i := 0; i < b.N; i++ {
				_, o := tr.Match(events[i%len(events)])
				ops += o
			}
			b.ReportMetric(float64(ops)/float64(b.N), "ops/event")
		})
	}
}

// BenchmarkAblationMatchers contrasts the tree filter against the naive and
// counting baselines (§2's three algorithm families).
func BenchmarkAblationMatchers(b *testing.B) {
	s, profiles, ed, events := benchWorkload(2000)
	tr, err := tree.Build(s, profiles)
	if err != nil {
		b.Fatal(err)
	}
	tr.ApplyValueOrder(selectivity.V1(ed, true))
	all := []matchers.Matcher{
		matchers.Tree{T: tr},
		matchers.NewCounting(s, profiles),
		matchers.NewNaive(s, profiles),
	}
	for _, m := range all {
		b.Run(m.Name(), func(b *testing.B) {
			ops := 0
			for i := 0; i < b.N; i++ {
				_, o := m.Match(events[i%len(events)])
				ops += o
			}
			b.ReportMetric(float64(ops)/float64(b.N), "ops/event")
		})
	}
}

// BenchmarkAblationValueOrder contrasts the 8 orderings + binary on one
// peaked workload (the paper's "8 different orderings plus binary search").
func BenchmarkAblationValueOrder(b *testing.B) {
	for _, order := range []string{
		"natural", "event", "profile", "event*profile", "binary",
	} {
		b.Run(sanitize(order), func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.TV4(2000, "95% low", "95% low", order, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				ops = r.MeanOps
			}
			b.ReportMetric(ops, "ops/event")
		})
	}
}

// BenchmarkAblationAdaptive contrasts a static natural-order service with
// the adaptive one under a drifting peaked stream (end-to-end broker path).
func BenchmarkAblationAdaptive(b *testing.B) {
	sch := MustSchema(Attr("v", MustIntegerDomain(0, 99)))
	rng := rand.New(rand.NewSource(benchSeed))
	mk := func(opts ...Option) *Service {
		svc, err := NewService(sch, opts...)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			expr := fmt.Sprintf("profile(v = %d)", rng.Intn(100))
			if _, err := svc.Subscribe(fmt.Sprintf("p%d", i), expr); err != nil {
				b.Fatal(err)
			}
		}
		return svc
	}
	ed := dist.New(dist.PeakHigh(0.95), sch.At(0).Domain)
	run := func(b *testing.B, svc *Service) {
		defer svc.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Publish(map[string]float64{"v": ed.Sample(rng)}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(svc.Stats().MeanOps, "ops/event")
	}
	b.Run("static", func(b *testing.B) { run(b, mk()) })
	b.Run("adaptive", func(b *testing.B) { run(b, mk(WithAdaptivePolicy(512, 0.05, false))) })
}

// BenchmarkAblationCovering contrasts the overlay with and without
// covering-based route pruning.
func BenchmarkAblationCovering(b *testing.B) {
	sch := MustSchema(Attr("price", MustNumericDomain(0, 1000)))
	for _, covering := range []bool{false, true} {
		name := "off"
		if covering {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			nw := routing.NewNetwork(sch, routing.Options{Covering: covering})
			defer nw.Close()
			for _, n := range []string{"A", "B", "C"} {
				if _, err := nw.AddNode(n); err != nil {
					b.Fatal(err)
				}
			}
			if err := nw.Connect("A", "B"); err != nil {
				b.Fatal(err)
			}
			if err := nw.Connect("B", "C"); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(benchSeed))
			// Nested ranges: heavy covering potential.
			for i := 0; i < 100; i++ {
				lo := float64(rng.Intn(400))
				expr := fmt.Sprintf("profile(price >= %g)", lo)
				p, err := predicate.Parse(sch, predicate.ID(fmt.Sprintf("r%d", i)), expr)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nw.Subscribe("C", p); err != nil {
					b.Fatal(err)
				}
			}
			a, err := nw.Node("A")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(a.RouteCount("B")), "routes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev, err := event.New(sch, float64(rng.Intn(1001)))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nw.Publish("A", ev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatchThroughput measures raw single-event matching latency of the
// optimized tree (the end-to-end hot path without broker overhead).
func BenchmarkMatchThroughput(b *testing.B) {
	for _, p := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			s, profiles, ed, events := benchWorkload(p)
			tr, err := tree.Build(s, profiles)
			if err != nil {
				b.Fatal(err)
			}
			tr.ApplyValueOrder(selectivity.V1(ed, true))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Match(events[i%len(events)])
			}
		})
	}
}

// BenchmarkTreeBuild measures automaton construction cost (the expensive
// half of restructuring).
func BenchmarkTreeBuild(b *testing.B) {
	for _, p := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			s, profiles, _, _ := benchWorkload(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.Build(s, profiles); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReorder measures the cheap half of restructuring: re-applying a
// value order without rebuilding.
func BenchmarkReorder(b *testing.B) {
	s, profiles, ed, _ := benchWorkload(2000)
	tr, err := tree.Build(s, profiles)
	if err != nil {
		b.Fatal(err)
	}
	vo := selectivity.V1(ed, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ApplyValueOrder(vo)
	}
}

// BenchmarkExtensionDontCare regenerates the don't-care-edge influence sweep
// (paper §5 outlook).
func BenchmarkExtensionDontCare(b *testing.B) {
	benchFigure(b, experiments.DontCareSweep)
}

// BenchmarkExtensionOperators regenerates the operator-family sweep (paper
// §5 outlook).
func BenchmarkExtensionOperators(b *testing.B) {
	benchFigure(b, experiments.OperatorSweep)
}

// BenchmarkExtensionSearch regenerates the five-strategy search comparison
// (paper §5 outlook: binary-, interpolation-, or hash-based search).
func BenchmarkExtensionSearch(b *testing.B) {
	benchFigure(b, experiments.SearchSweep)
}

// publishWorkload builds a service with p equality profiles over an integer
// domain and a prebuilt uniform event stream: the uniform-stream workload of
// the sharding evaluation. Roughly p/100 profiles match every event, so the
// delivery and accounting path is exercised at a realistic rate.
func publishWorkload(b *testing.B, p int, opts ...Option) (*Service, []Event) {
	b.Helper()
	sch := MustSchema(Attr("v", MustIntegerDomain(0, 99)))
	// Binary node search: the right strategy for a uniform stream (no skew
	// for the ordering measures to exploit), and it keeps per-shard matching
	// cheap so the benchmark measures the publish path, not the matcher.
	svc, err := NewService(sch, append([]Option{WithBinarySearch()}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(benchSeed))
	for i := 0; i < p; i++ {
		expr := fmt.Sprintf("profile(v = %d)", rng.Intn(100))
		if _, err := svc.Subscribe(fmt.Sprintf("p%d", i), expr); err != nil {
			b.Fatal(err)
		}
	}
	events := make([]Event, 8192)
	for i := range events {
		ev, err := svc.Event(map[string]float64{"v": float64(rng.Intn(100))})
		if err != nil {
			b.Fatal(err)
		}
		events[i] = ev
	}
	return svc, events
}

// BenchmarkPublishParallel measures concurrent publish throughput on the
// uniform-stream workload: GOMAXPROCS publishers against the single-shard
// path and the GOMAXPROCS-way sharded path. The sharded engine removes the
// broker-wide serialization points (one accounting mutex, one counters
// mutex, one subscription lock), so at GOMAXPROCS ≥ 4 the sharded
// configuration sustains multiples of the single-shard throughput. Setup
// verifies per-event match counts against the sequential single-tree oracle
// before timing starts.
func BenchmarkPublishParallel(b *testing.B) {
	for _, shards := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			svc, events := publishWorkload(b, 2000, WithShards(shards))
			defer svc.Close()
			oracle, _ := publishWorkload(b, 2000, WithShards(1))
			defer oracle.Close()
			for _, ev := range events[:256] {
				want, err := oracle.PublishEvent(ev)
				if err != nil {
					b.Fatal(err)
				}
				got, err := svc.PublishEvent(ev)
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("sharded matched %d, sequential oracle %d", got, want)
				}
			}
			// One atomic per publisher goroutine (not per event): a shared
			// per-op counter would itself bounce a cache line and damp the
			// very contention difference being measured.
			var worker atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(worker.Add(1)) * 7919 // distinct stride start per publisher
				for pb.Next() {
					ev := events[i%len(events)]
					i++
					if _, err := svc.PublishEvent(ev); err != nil {
						b.Error(err) // Fatal must not be called off the benchmark goroutine
						return
					}
				}
			})
			b.StopTimer()
			st := svc.Stats()
			b.ReportMetric(float64(st.Delivered+st.Dropped)/float64(st.Published), "notifs/event")
		})
	}
}

// BenchmarkPublishBatch measures the batched publish path against per-event
// publishing on the same workload: one PublishBatch call amortizes sequence
// assignment, adaptor bookkeeping and shard lock acquisition over the whole
// slice and matches events concurrently.
func BenchmarkPublishBatch(b *testing.B) {
	for _, shards := range []int{1, runtime.GOMAXPROCS(0)} {
		for _, batch := range []int{1, 64, 1024} {
			name := fmt.Sprintf("shards=%d/batch=%d", shards, batch)
			b.Run(name, func(b *testing.B) {
				svc, events := publishWorkload(b, 2000, WithShards(shards))
				defer svc.Close()
				buf := make([]Event, batch)
				b.ResetTimer()
				for done := 0; done < b.N; {
					n := batch
					if done+n > b.N {
						n = b.N - done
					}
					for i := 0; i < n; i++ {
						buf[i] = events[(done+i)%len(events)]
					}
					if n == 1 {
						if _, err := svc.PublishEvent(buf[0]); err != nil {
							b.Fatal(err)
						}
					} else if _, err := svc.PublishBatch(buf[:n]); err != nil {
						b.Fatal(err)
					}
					done += n
				}
			})
		}
	}
}

// BenchmarkPublishPath contrasts the three event-assembly paths of the v1
// API on a hot publish loop: the v0-style map, positional PublishValues, and
// the reusable EventBuilder. Run with -benchmem — the interesting number is
// allocs/op. The "miss" variants publish events matching no profile (the
// filter's common case, and the paper's premise): the builder path allocates
// nothing, PublishValues pays only its variadic slice, the map path pays a
// map plus a values slice per event. The "hit" variants match ~4 profiles
// and additionally pay one event-values copy for delivery.
func BenchmarkPublishPath(b *testing.B) {
	mk := func(b *testing.B) *Service {
		b.Helper()
		sch := MustSchema(Attr("v", MustIntegerDomain(0, 999)))
		svc, err := NewService(sch, WithBinarySearch())
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(benchSeed))
		for i := 0; i < 2000; i++ {
			expr := fmt.Sprintf("profile(v = %d)", rng.Intn(500))
			if _, err := svc.Subscribe(fmt.Sprintf("p%d", i), expr); err != nil {
				b.Fatal(err)
			}
		}
		return svc
	}
	// miss: values in [500,999] match nothing; hit: values in [0,499] match
	// ~4 profiles each.
	val := func(i int, hit bool) float64 {
		if hit {
			return float64(i % 500)
		}
		return float64(500 + i%500)
	}
	for _, hit := range []bool{false, true} {
		suffix := "/miss"
		if hit {
			suffix = "/hit"
		}
		b.Run("map"+suffix, func(b *testing.B) {
			svc := mk(b)
			defer svc.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Publish(map[string]float64{"v": val(i, hit)}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("values"+suffix, func(b *testing.B) {
			svc := mk(b)
			defer svc.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.PublishValues(val(i, hit)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("builder"+suffix, func(b *testing.B) {
			svc := mk(b)
			defer svc.Close()
			eb := svc.NewEvent()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eb.Set("v", val(i, hit)).Publish(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPublishPathAllocations pins the acceptance criterion: the builder and
// Values paths perform zero map allocations per published event, and the
// builder path allocates nothing at all for non-matching events.
func TestPublishPathAllocations(t *testing.T) {
	sch := MustSchema(Attr("v", MustIntegerDomain(0, 999)))
	svc, err := NewService(sch, WithBinarySearch())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := 0; i < 100; i++ {
		if _, err := svc.Subscribe(fmt.Sprintf("p%d", i), fmt.Sprintf("profile(v = %d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	eb := svc.NewEvent()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := eb.Set("v", 999).Publish(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EventBuilder publish of a non-matching event allocates %.1f objects/event, want 0", allocs)
	}
	// A matching event pays exactly the delivery copies (event values slice
	// + engine match buffer), still no map.
	allocs = testing.AllocsPerRun(1000, func() {
		if _, err := eb.Set("v", 42).Publish(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Errorf("EventBuilder publish of a matching event allocates %.1f objects/event, want <= 3", allocs)
	}
}

// TestDeliveryPathAllocations pins the delivery path's allocation behavior on
// an incrementally churned index: handler-driven subscribers receiving
// matching events allocate only the fixed per-event delivery cost, and a
// subscribe/unsubscribe pair folded into the publish loop stays under the
// same allocs-per-event ceiling the CI perf gate enforces on the churn-heavy
// scenario — per-operation full rebuilds (thousands of allocations each)
// cannot hide under either bound.
func TestDeliveryPathAllocations(t *testing.T) {
	sch := MustSchema(Attr("v", MustIntegerDomain(0, 999)))
	svc, err := NewService(sch, WithBinarySearch())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var delivered atomic.Uint64
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("h%d", i)
		if _, err := svc.Subscribe(id, "profile(v <= 100)", SubHandler(func(Notification) {
			delivered.Add(1)
		})); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := svc.Subscribe(fmt.Sprintf("p%d", i), fmt.Sprintf("profile(v = %d)", 200+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Churn the corpus so the measured tree is the incrementally grown one
	// (tombstones, patched-in subtrees), not a pristine build.
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("c%d", i)
		if _, err := svc.Subscribe(id, fmt.Sprintf("profile(v = %d)", 400+i)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := svc.Unsubscribe(id); err != nil {
				t.Fatal(err)
			}
		}
	}

	eb := svc.NewEvent()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := eb.Set("v", 42).Publish(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("handler delivery on a churned index allocates %.1f objects/event, want <= 8", allocs)
	}

	// Active churn folded into the publish loop: one subscribe/unsubscribe
	// pair per published event. 100 allocs/event is the CI gate's churn-heavy
	// ceiling; a per-operation rebuild would blow it by orders of magnitude.
	churn := 0
	allocs = testing.AllocsPerRun(1000, func() {
		churn++
		id := fmt.Sprintf("x%d", churn)
		if _, err := svc.Subscribe(id, fmt.Sprintf("profile(v = %d)", 500+churn%400)); err != nil {
			t.Fatal(err)
		}
		if err := svc.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
		if _, err := eb.Set("v", 42).Publish(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 100 {
		t.Errorf("publish+churn allocates %.1f objects/op, want <= 100 (per-op rebuilds would be thousands)", allocs)
	}

	// The handlers really ran: every measured publish matched all four.
	deadline := 0
	for delivered.Load() == 0 && deadline < 1000 {
		deadline++
		runtime.Gosched()
	}
	if delivered.Load() == 0 {
		t.Error("handler subscribers never received a delivery")
	}
}

// BenchmarkMatchBatch measures parallel batch matching against the
// sequential path on the same workload.
func BenchmarkMatchBatch(b *testing.B) {
	sch := MustSchema(Attr("v", MustIntegerDomain(0, 99)))
	svc, err := NewService(sch)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	rng := rand.New(rand.NewSource(benchSeed))
	for i := 0; i < 500; i++ {
		if _, err := svc.Subscribe(fmt.Sprintf("p%d", i), fmt.Sprintf("profile(v = %d)", rng.Intn(100))); err != nil {
			b.Fatal(err)
		}
	}
	events := make([][]float64, 4096)
	for i := range events {
		events[i] = []float64{float64(rng.Intn(100))}
	}
	engine := svc.brk.Engine()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.MatchBatch(events, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(events)))
		})
	}
}
