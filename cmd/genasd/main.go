// Command genasd runs the GENAS event notification daemon: a TCP broker
// speaking the JSON-line wire protocol. The attribute schema is defined at
// startup; profiles, events and quench queries arrive at runtime.
//
// Usage:
//
//	genasd -addr :7452 \
//	       -schema 'temperature=numeric[-30,50]; humidity=numeric[0,100]; radiation=numeric[1,100]' \
//	       -adaptive -measure event -attrs A2 -shards 8 \
//	       -defaults 'radiation=1'
//
// Several daemons form a broker federation (an acyclic overlay) by naming
// themselves and dialing peers:
//
//	genasd -addr :7452 -schema '…' -node A
//	genasd -addr :7453 -schema '…' -node B -peer localhost:7452
//	genasd -addr :7454 -schema '…' -node C -peer localhost:7453
//
// Profiles propagate between daemons and an event crosses a TCP link only
// when that link's routing filter matches it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"genas"
	"genas/internal/federation"
	"genas/internal/hook"
	"genas/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run starts the daemon. If ready is non-nil, the bound listener address is
// sent on it once the daemon is accepting connections (test hook).
func run(args []string, stderr io.Writer, ready chan<- net.Addr) int {
	fs := flag.NewFlagSet("genasd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":7452", "TCP listen address")
		schemaSpec = fs.String("schema", "", "schema spec, e.g. 'temp=numeric[-30,50]; state=cat{ok,alarm}'")
		adaptiveOn = fs.Bool("adaptive", false, "enable adaptive tree restructuring")
		goal       = fs.String("goal", "event", "adaptive goal: event | user")
		window     = fs.Int("window", 1024, "events between drift checks")
		threshold  = fs.Float64("threshold", 0.1, "total-variation drift threshold")
		measure    = fs.String("measure", "natural", "value measure: natural | event | profile | event*profile")
		attrs      = fs.String("attrs", "natural", "attribute ordering: natural | A1 | A2 | A3")
		search     = fs.String("search", "linear", "node search: linear | binary | interpolation | hash")
		shards     = fs.Int("shards", 1, "engine/delivery shard count (0 = GOMAXPROCS, 1 = single tree)")
		defaults   = fs.String("defaults", "", "fill-ins for omitted event attributes, e.g. 'radiation=1; humidity=0'")
		proto      = fs.String("proto", "auto", "max wire protocol: auto | v1 | v2 (v1 pins every connection to JSON lines)")
		node       = fs.String("node", "", "federation node name (required with -peer; enables broker peering)")
		peer       = fs.String("peer", "", "comma-separated peer daemon addresses to dial, e.g. 'host1:7452,host2:7452'")
		covering   = fs.Bool("covering", true, "prune covered routes from per-peer-link filters (federation)")
		aggregate  = fs.Bool("aggregate", false, "canonical subscription aggregation: intern equal structures, index only covering-poset roots")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	logger := log.New(stderr, "genasd: ", log.LstdFlags)
	maxProto, err := parseProto(*proto)
	if err != nil {
		logger.Print(err)
		return 2
	}
	if *schemaSpec == "" {
		logger.Print("missing -schema")
		return 2
	}
	sch, err := genas.ParseSchema(*schemaSpec)
	if err != nil {
		logger.Printf("bad schema: %v", err)
		return 2
	}

	if *shards < 0 {
		logger.Printf("bad -shards %d", *shards)
		return 2
	}
	opts := []genas.Option{
		genas.WithValueMeasure(*measure),
		genas.WithAttrOrdering(*attrs),
		genas.WithSearch(*search),
		genas.WithShards(*shards),
	}
	if *aggregate {
		opts = append(opts, genas.WithAggregation())
	}
	if *adaptiveOn {
		opts = append(opts, genas.WithAdaptivePolicy(*window, *threshold, false))
		if *goal == "user" {
			opts = append(opts, genas.WithUserCentricAdaptive())
		}
	}
	if *defaults != "" {
		byAttr, err := parseDefaults(*defaults)
		if err != nil {
			logger.Printf("bad -defaults: %v", err)
			return 2
		}
		opts = append(opts, genas.WithDefaults(byAttr))
	}
	svc, err := genas.NewService(sch, opts...)
	if err != nil {
		// Option errors (unknown measure, ordering, search, bad defaults)
		// are configuration mistakes, same exit class as flag errors.
		logger.Printf("service: %v", err)
		return 2
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return 1
	}
	logger.Printf("listening on %s with schema %s (%d shards)", ln.Addr(), sch, hook.BrokerOf(svc).Shards())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The wire server programs against the broker; the internal hook hands
	// it over without the facade growing a public escape hatch.
	srv := wire.NewServer(hook.BrokerOf(svc), logger)
	srv.SetMaxProto(maxProto)
	srv.SetDefaults(hook.DefaultsOf(svc))
	defer srv.Close()

	var fed *federation.Fed
	if *node != "" || *peer != "" {
		if *node == "" {
			logger.Print("-peer requires -node")
			_ = ln.Close()
			return 2
		}
		fed, err = federation.New(hook.BrokerOf(svc), federation.Options{
			Node:     *node,
			Covering: *covering,
			Logger:   logger,
			Proto:    maxProto,
		})
		if err != nil {
			logger.Printf("federation: %v", err)
			_ = ln.Close()
			return 2
		}
		srv.SetOverlay(fed)
		defer fed.Close()
		// Peers are dialed with retry in the background: a chain can boot in
		// any order, and route replay on connect converges the overlay.
		for _, addr := range strings.Split(*peer, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				fed.DialRetry(addr)
			}
		}
	}
	// On shutdown, disconnect clients too: canceling the context only stops
	// the accept loop, and Serve waits for connected clients otherwise.
	go func() {
		<-ctx.Done()
		srv.Close()
	}()

	// Readiness is announced only after the signal handler is installed: a
	// caller may send SIGTERM the moment it learns the address, and before
	// NotifyContext runs that signal would hit the default disposition and
	// kill the process.
	if ready != nil {
		ready <- ln.Addr()
	}
	if err := srv.Serve(ctx, ln); err != nil {
		logger.Printf("serve: %v", err)
		return 1
	}
	logger.Print("shut down")
	return 0
}

// parseProto reads the -proto flag. "auto" and "v2" both let connections
// negotiate up to the binary protocol (the server side of auto IS v2
// support); "v1" pins the daemon — its listener and its outbound peer links —
// to the JSON-line protocol.
func parseProto(s string) (wire.Proto, error) {
	switch strings.ToLower(s) {
	case "auto":
		return wire.ProtoAuto, nil
	case "v1":
		return wire.ProtoV1, nil
	case "v2":
		return wire.ProtoV2, nil
	}
	return 0, fmt.Errorf("bad -proto %q (want auto, v1 or v2)", s)
}

// parseDefaults reads the -defaults spec: 'attr=value; attr=value'.
func parseDefaults(spec string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("missing '=' in %q", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(part[eq+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q", part)
		}
		out[strings.TrimSpace(part[:eq])] = v
	}
	return out, nil
}
