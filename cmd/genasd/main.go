// Command genasd runs the GENAS event notification daemon: a TCP broker
// speaking the JSON-line wire protocol. The attribute schema is defined at
// startup; profiles, events and quench queries arrive at runtime.
//
// Usage:
//
//	genasd -addr :7452 \
//	       -schema 'temperature=numeric[-30,50]; humidity=numeric[0,100]; radiation=numeric[1,100]' \
//	       -adaptive -measure event -attrs A2 -shards 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"genas/internal/adaptive"
	"genas/internal/broker"
	"genas/internal/core"
	"genas/internal/schema"
	"genas/internal/tree"
	"genas/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run starts the daemon. If ready is non-nil, the bound listener address is
// sent on it once the daemon is accepting connections (test hook).
func run(args []string, stderr io.Writer, ready chan<- net.Addr) int {
	fs := flag.NewFlagSet("genasd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":7452", "TCP listen address")
		schemaSpec = fs.String("schema", "", "schema spec, e.g. 'temp=numeric[-30,50]; state=cat{ok,alarm}'")
		adaptiveOn = fs.Bool("adaptive", false, "enable adaptive tree restructuring")
		goal       = fs.String("goal", "event", "adaptive goal: event | user")
		window     = fs.Int("window", 1024, "events between drift checks")
		threshold  = fs.Float64("threshold", 0.1, "total-variation drift threshold")
		measure    = fs.String("measure", "natural", "value measure: natural | event | profile | event*profile")
		attrs      = fs.String("attrs", "natural", "attribute ordering: natural | A1 | A2 | A3")
		search     = fs.String("search", "linear", "node search: linear | binary | interpolation | hash")
		shards     = fs.Int("shards", 1, "engine/delivery shard count (0 = GOMAXPROCS, 1 = single tree)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	logger := log.New(stderr, "genasd: ", log.LstdFlags)
	if *schemaSpec == "" {
		logger.Print("missing -schema")
		return 2
	}
	sch, err := schema.ParseSpec(*schemaSpec)
	if err != nil {
		logger.Printf("bad schema: %v", err)
		return 2
	}

	cfg, err := engineConfig(*measure, *attrs, *search)
	if err != nil {
		logger.Print(err)
		return 2
	}
	if *shards < 0 {
		logger.Printf("bad -shards %d", *shards)
		return 2
	}
	n := core.ResolveShards(*shards)
	opts := broker.Options{Engine: cfg, Adaptive: *adaptiveOn, Shards: n}
	if *adaptiveOn {
		opts.Policy = adaptive.Policy{Window: *window, Threshold: *threshold}
		if *goal == "user" {
			opts.Policy.Goal = adaptive.UserCentric
		}
	}
	brk, err := broker.New(sch, opts)
	if err != nil {
		logger.Printf("broker: %v", err)
		return 1
	}
	defer brk.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return 1
	}
	logger.Printf("listening on %s with schema %s (%d shards)", ln.Addr(), sch, n)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := wire.NewServer(brk, logger)
	defer srv.Close()
	// On shutdown, disconnect clients too: canceling the context only stops
	// the accept loop, and Serve waits for connected clients otherwise.
	go func() {
		<-ctx.Done()
		srv.Close()
	}()

	// Readiness is announced only after the signal handler is installed: a
	// caller may send SIGTERM the moment it learns the address, and before
	// NotifyContext runs that signal would hit the default disposition and
	// kill the process.
	if ready != nil {
		ready <- ln.Addr()
	}
	if err := srv.Serve(ctx, ln); err != nil {
		logger.Printf("serve: %v", err)
		return 1
	}
	logger.Print("shut down")
	return 0
}

func engineConfig(measure, attrs, search string) (core.Config, error) {
	var cfg core.Config
	switch measure {
	case "natural":
		cfg.ValueMeasure = core.ValueNatural
	case "event":
		cfg.ValueMeasure = core.ValueEvent
	case "profile":
		cfg.ValueMeasure = core.ValueProfile
	case "event*profile":
		cfg.ValueMeasure = core.ValueCombined
	default:
		return cfg, fmt.Errorf("unknown -measure %q", measure)
	}
	switch attrs {
	case "natural":
		cfg.AttrOrdering = core.AttrNatural
	case "A1":
		cfg.AttrOrdering = core.AttrA1
	case "A2":
		cfg.AttrOrdering = core.AttrA2
	case "A3":
		cfg.AttrOrdering = core.AttrA3
	default:
		return cfg, fmt.Errorf("unknown -attrs %q", attrs)
	}
	switch search {
	case "linear":
		cfg.Search = tree.SearchLinear
	case "binary":
		cfg.Search = tree.SearchBinary
	case "interpolation":
		cfg.Search = tree.SearchInterpolation
	case "hash":
		cfg.Search = tree.SearchHash
	default:
		return cfg, fmt.Errorf("unknown -search %q", search)
	}
	return cfg, nil
}
