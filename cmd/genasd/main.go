// Command genasd runs the GENAS event notification daemon: a TCP broker
// speaking the JSON-line wire protocol. The attribute schema is defined at
// startup; profiles, events and quench queries arrive at runtime.
//
// Usage:
//
//	genasd -addr :7452 \
//	       -schema 'temperature=numeric[-30,50]; humidity=numeric[0,100]; radiation=numeric[1,100]' \
//	       -adaptive -measure event -attrs A2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"genas/internal/adaptive"
	"genas/internal/broker"
	"genas/internal/core"
	"genas/internal/schema"
	"genas/internal/tree"
	"genas/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":7452", "TCP listen address")
		schemaSpec = flag.String("schema", "", "schema spec, e.g. 'temp=numeric[-30,50]; state=cat{ok,alarm}'")
		adaptiveOn = flag.Bool("adaptive", false, "enable adaptive tree restructuring")
		goal       = flag.String("goal", "event", "adaptive goal: event | user")
		window     = flag.Int("window", 1024, "events between drift checks")
		threshold  = flag.Float64("threshold", 0.1, "total-variation drift threshold")
		measure    = flag.String("measure", "natural", "value measure: natural | event | profile | event*profile")
		attrs      = flag.String("attrs", "natural", "attribute ordering: natural | A1 | A2 | A3")
		search     = flag.String("search", "linear", "node search: linear | binary | interpolation | hash")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "genasd: ", log.LstdFlags)
	if *schemaSpec == "" {
		logger.Print("missing -schema")
		return 2
	}
	sch, err := schema.ParseSpec(*schemaSpec)
	if err != nil {
		logger.Printf("bad schema: %v", err)
		return 2
	}

	cfg, err := engineConfig(*measure, *attrs, *search)
	if err != nil {
		logger.Print(err)
		return 2
	}
	opts := broker.Options{Engine: cfg, Adaptive: *adaptiveOn}
	if *adaptiveOn {
		opts.Policy = adaptive.Policy{Window: *window, Threshold: *threshold}
		if *goal == "user" {
			opts.Policy.Goal = adaptive.UserCentric
		}
	}
	brk, err := broker.New(sch, opts)
	if err != nil {
		logger.Printf("broker: %v", err)
		return 1
	}
	defer brk.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return 1
	}
	logger.Printf("listening on %s with schema %s", ln.Addr(), sch)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := wire.NewServer(brk, logger)
	defer srv.Close()
	if err := srv.Serve(ctx, ln); err != nil {
		logger.Printf("serve: %v", err)
		return 1
	}
	logger.Print("shut down")
	return 0
}

func engineConfig(measure, attrs, search string) (core.Config, error) {
	var cfg core.Config
	switch measure {
	case "natural":
		cfg.ValueMeasure = core.ValueNatural
	case "event":
		cfg.ValueMeasure = core.ValueEvent
	case "profile":
		cfg.ValueMeasure = core.ValueProfile
	case "event*profile":
		cfg.ValueMeasure = core.ValueCombined
	default:
		return cfg, fmt.Errorf("unknown -measure %q", measure)
	}
	switch attrs {
	case "natural":
		cfg.AttrOrdering = core.AttrNatural
	case "A1":
		cfg.AttrOrdering = core.AttrA1
	case "A2":
		cfg.AttrOrdering = core.AttrA2
	case "A3":
		cfg.AttrOrdering = core.AttrA3
	default:
		return cfg, fmt.Errorf("unknown -attrs %q", attrs)
	}
	switch search {
	case "linear":
		cfg.Search = tree.SearchLinear
	case "binary":
		cfg.Search = tree.SearchBinary
	case "interpolation":
		cfg.Search = tree.SearchInterpolation
	case "hash":
		cfg.Search = tree.SearchHash
	default:
		return cfg, fmt.Errorf("unknown -search %q", search)
	}
	return cfg, nil
}
