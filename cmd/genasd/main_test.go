package main

import "testing"

func TestParseDefaults(t *testing.T) {
	d, err := parseDefaults("radiation=1; humidity=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || d["radiation"] != 1 || d["humidity"] != 0.5 {
		t.Errorf("defaults = %v", d)
	}
	if d, err := parseDefaults("  "); err != nil || len(d) != 0 {
		t.Errorf("blank spec: %v, %v", d, err)
	}
	if _, err := parseDefaults("radiation"); err == nil {
		t.Error("missing '=' must fail")
	}
	if _, err := parseDefaults("radiation=low"); err == nil {
		t.Error("non-numeric value must fail")
	}
}
