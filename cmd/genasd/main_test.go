package main

import (
	"testing"

	"genas/internal/core"
	"genas/internal/tree"
)

func TestEngineConfig(t *testing.T) {
	cfg, err := engineConfig("event", "A2", "binary")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ValueMeasure != core.ValueEvent || cfg.AttrOrdering != core.AttrA2 || cfg.Search != tree.SearchBinary {
		t.Errorf("cfg = %+v", cfg)
	}
	for _, c := range [][3]string{
		{"natural", "natural", "linear"},
		{"profile", "A1", "interpolation"},
		{"event*profile", "A3", "hash"},
	} {
		if _, err := engineConfig(c[0], c[1], c[2]); err != nil {
			t.Errorf("engineConfig(%v): %v", c, err)
		}
	}
	if _, err := engineConfig("bogus", "A1", "linear"); err == nil {
		t.Error("bad measure must fail")
	}
	if _, err := engineConfig("event", "A7", "linear"); err == nil {
		t.Error("bad ordering must fail")
	}
	if _, err := engineConfig("event", "A1", "quantum"); err == nil {
		t.Error("bad search must fail")
	}
}
