package main

import (
	"bufio"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"genas/internal/wire"
)

// childArgsEnv carries the daemon argument vector into a re-executed test
// binary (unit-separator joined), so the federation test runs real separate
// OS processes without needing the go toolchain at test time. Children
// inherit the test binary's build flags — under -race the daemons are
// race-instrumented too.
const childArgsEnv = "GENASD_CHILD_ARGS"

func TestMain(m *testing.M) {
	if args := os.Getenv(childArgsEnv); args != "" {
		os.Exit(run(strings.Split(args, "\x1f"), os.Stderr, nil))
	}
	os.Exit(m.Run())
}

var listeningRE = regexp.MustCompile(`listening on (\S+) with`)

// startProcess spawns one genasd as a separate OS process and returns its
// bound address (scanned from the startup log) and a stop function.
func startProcess(t *testing.T, args ...string) (addr string, stop func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), childArgsEnv+"="+strings.Join(args, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listeningRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrC <- m[1]:
				default:
				}
			}
		}
	}()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
			t.Error("daemon did not shut down on SIGTERM")
		}
	}
	t.Cleanup(stop)
	select {
	case addr = <-addrC:
		return addr, stop
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never logged its listen address")
		return "", nil
	}
}

// TestFederationThreeDaemons is the multi-process integration test of the
// broker federation: three genasd processes in a chain A—B—C. A profile
// subscribed at daemon C matches an event published at daemon A two wire
// hops away, and daemon B's stats show early-rejected events for publishes
// nobody beyond its link wants — filtering happens at the link, not the
// endpoint.
func TestFederationThreeDaemons(t *testing.T) {
	const (
		rpcTimeout = 5 * time.Second
		schemaSpec = "temperature=numeric[-30,50]; humidity=numeric[0,100]"
	)
	base := []string{"-addr", "127.0.0.1:0", "-schema", schemaSpec}
	addrA, _ := startProcess(t, append(base, "-node", "A")...)
	addrB, _ := startProcess(t, append(base, "-node", "B", "-peer", addrA)...)
	addrC, _ := startProcess(t, append(base, "-node", "C", "-peer", addrB)...)

	dial := func(addr string) *wire.Client {
		c, err := wire.Dial(addr, rpcTimeout)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	cliA, cliB, cliC := dial(addrA), dial(addrB), dial(addrC)

	// C wants hot events; B (the middle hop) has a local humidity watcher.
	if err := cliC.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	if err := cliB.Subscribe("humid", "profile(humidity >= 50)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}

	// Publish a hot event at A until the route C→B→A has propagated and the
	// notification crosses both wire hops.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := cliA.Publish(map[string]float64{"temperature": 41, "humidity": 10}, rpcTimeout); err != nil {
			t.Fatal(err)
		}
		var notified bool
		select {
		case n := <-cliC.Notifications():
			if n.Profile != "hot" || n.Event["temperature"] != 41 {
				t.Fatalf("notification = %+v", n)
			}
			notified = true
		case <-time.After(200 * time.Millisecond):
		}
		if notified {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription at C never matched an event published at A")
		}
	}

	// The retry loop above may have left further hot notifications in
	// flight; drain them so the isolation check below only sees what the
	// humid publish produces.
	drained := false
	for !drained {
		select {
		case n := <-cliC.Notifications():
			if n.Profile != "hot" {
				t.Fatalf("unexpected notification %+v", n)
			}
		case <-time.After(300 * time.Millisecond):
			drained = true
		}
	}

	// A humid-only event crosses A→B (B's local subscriber wants it) but is
	// early-rejected at B's link toward C.
	if _, err := cliA.Publish(map[string]float64{"temperature": 0, "humidity": 80}, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		st, err := cliB.Stats(rpcTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if st.Filtered >= 1 {
			if st.Node != "B" || st.Peers != 2 {
				t.Errorf("B stats = %+v, want node B with 2 peers", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("B never early-rejected the humid event: %+v", st)
		}
		time.Sleep(100 * time.Millisecond)
	}
	select {
	case n := <-cliB.Notifications():
		if n.Profile != "humid" {
			t.Errorf("B notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("B's local subscriber starved")
	}
	// C never sees the humid event.
	select {
	case n := <-cliC.Notifications():
		t.Fatalf("C notified for an event it never subscribed to: %+v", n)
	case <-time.After(200 * time.Millisecond):
	}

	// A cold event nobody wants is rejected at A's own links: filtered grows
	// at A without crossing a wire.
	if _, err := cliA.Publish(map[string]float64{"temperature": -20, "humidity": 10}, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		st, err := cliA.Stats(rpcTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if st.Filtered >= 1 {
			if st.Forwarded < 2 {
				t.Errorf("A forwarded %d events, want >= 2", st.Forwarded)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("A never early-rejected the cold event: %+v", st)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestFederationMixedProtocolChain is the mixed-version interop test: a
// four-daemon chain A—B—C—D where C is pinned to the v1 JSON-line protocol
// (an un-upgraded daemon). The A—B link negotiates binary v2 frames while
// both links touching C fall back to v1, and the chain must still deliver
// exactly the matching event set end to end — protocol generation is a
// per-link concern, invisible to routing.
func TestFederationMixedProtocolChain(t *testing.T) {
	const (
		rpcTimeout = 5 * time.Second
		schemaSpec = "temperature=numeric[-30,50]; humidity=numeric[0,100]"
	)
	base := []string{"-addr", "127.0.0.1:0", "-schema", schemaSpec}
	addrA, _ := startProcess(t, append(base, "-node", "A")...)
	addrB, _ := startProcess(t, append(base, "-node", "B", "-peer", addrA)...)
	addrC, _ := startProcess(t, append(base, "-node", "C", "-peer", addrB, "-proto", "v1")...)
	addrD, _ := startProcess(t, append(base, "-node", "D", "-peer", addrC)...)

	dial := func(addr string) *wire.Client {
		c, err := wire.DialWith(addr, wire.DialConfig{Timeout: rpcTimeout})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	cliA, cliB, cliD := dial(addrA), dial(addrB), dial(addrD)

	if err := cliD.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}

	// Probe-publish at A until the route has propagated D→C→B→A and a
	// notification crosses all three wire hops.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, err := cliA.Publish(map[string]float64{"temperature": 49, "humidity": 1}, rpcTimeout); err != nil {
			t.Fatal(err)
		}
		var notified bool
		select {
		case n := <-cliD.Notifications():
			if n.Profile != "hot" {
				t.Fatalf("notification = %+v", n)
			}
			notified = true
		case <-time.After(200 * time.Millisecond):
		}
		if notified {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription at D never matched an event published at A across the mixed chain")
		}
	}
	// Drain in-flight probe notifications so the oracle check below sees
	// only its own events.
	for drained := false; !drained; {
		select {
		case n := <-cliD.Notifications():
			if n.Profile != "hot" {
				t.Fatalf("unexpected notification %+v", n)
			}
		case <-time.After(300 * time.Millisecond):
			drained = true
		}
	}

	// The oracle set: of five events published at A, exactly the three with
	// temperature >= 35 must reach D — no loss at a protocol boundary, no
	// duplication, nothing extra.
	events := []map[string]float64{
		{"temperature": 36, "humidity": 20}, // match
		{"temperature": 10, "humidity": 5},  // no
		{"temperature": 35, "humidity": 60}, // match (boundary)
		{"temperature": 34, "humidity": 70}, // no
		{"temperature": 42, "humidity": 80}, // match
	}
	if _, err := cliA.PublishBatch(events, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	want := map[float64]bool{36: true, 35: true, 42: true}
	got := map[float64]bool{}
	for len(got) < len(want) {
		select {
		case n := <-cliD.Notifications():
			temp := cliD.EventMap(n)["temperature"]
			if !want[temp] || got[temp] {
				t.Fatalf("unexpected or duplicate delivery %+v (got %v)", n, got)
			}
			got[temp] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("delivery incomplete: got %v, want %v", got, want)
		}
	}
	select {
	case n := <-cliD.Notifications():
		t.Fatalf("delivery beyond the oracle set: %+v", cliD.EventMap(n))
	case <-time.After(300 * time.Millisecond):
	}

	// B sits on the protocol boundary: its link to A negotiated v2, its link
	// from C stayed v1.
	st, err := cliB.Stats(rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "B" || st.Peers != 2 || st.ProtoV2Peers != 1 {
		t.Errorf("B stats = node %q peers %d v2-peers %d, want B/2/1", st.Node, st.Peers, st.ProtoV2Peers)
	}
}

// TestFederationFlagValidation: -peer without -node is a configuration
// error.
func TestFederationFlagValidation(t *testing.T) {
	var stderr strings.Builder
	code := run([]string{
		"-addr", "127.0.0.1:0",
		"-schema", "x=numeric[0,1]",
		"-peer", "localhost:1",
	}, &stderr, nil)
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-node") {
		t.Errorf("stderr = %q, want a -node hint", stderr.String())
	}
}

// TestFederatedDaemonSingle: a daemon with -node but no peers serves
// normally and reports its node name in stats.
func TestFederatedDaemonSingle(t *testing.T) {
	addr, _, stop := startDaemon(t, "-node", "solo")
	c, err := wire.Dial(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := c.Publish(map[string]float64{"temperature": 10, "humidity": 10}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "solo" || st.Peers != 0 {
		t.Errorf("stats = %+v", st)
	}
	if code := stop(); code != 0 {
		t.Errorf("exit = %d", code)
	}
}
