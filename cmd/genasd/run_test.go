package main

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"genas/internal/wire"
)

// startDaemon runs the daemon main loop on an ephemeral port and returns its
// address plus a stop function that signals shutdown and waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (net.Addr, *bytes.Buffer, func() int) {
	t.Helper()
	var stderr bytes.Buffer
	var mu sync.Mutex // stderr is written by the daemon goroutine
	w := &lockedWriter{buf: &stderr, mu: &mu}
	ready := make(chan net.Addr, 1)
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-schema", "temperature=numeric[-30,50]; humidity=numeric[0,100]",
	}, extraArgs...)
	code := make(chan int, 1)
	go func() { code <- run(args, w, ready) }()
	select {
	case addr := <-ready:
		return addr, &stderr, func() int {
			_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
			select {
			case c := <-code:
				return c
			case <-time.After(10 * time.Second):
				t.Fatal("daemon did not shut down")
				return -1
			}
		}
	case c := <-code:
		t.Fatalf("daemon exited early with %d: %s", c, stderr.String())
		return nil, nil, nil
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
		return nil, nil, nil
	}
}

type lockedWriter struct {
	buf *bytes.Buffer
	mu  *sync.Mutex
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// TestDaemonEndToEnd boots the daemon (sharded, adaptive) and exercises the
// wire surface including the batch frame, then shuts it down via SIGTERM.
func TestDaemonEndToEnd(t *testing.T) {
	addr, _, stop := startDaemon(t,
		"-shards", "2", "-adaptive", "-goal", "user", "-window", "64",
		"-measure", "event", "-attrs", "A2", "-search", "linear")

	c, err := wire.Dial(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("hot", "profile(temperature >= 35)", 0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	matched, err := c.Publish(map[string]float64{"temperature": 40, "humidity": 10}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Errorf("matched = %d", matched)
	}
	counts, err := c.PublishBatch([]map[string]float64{
		{"temperature": 36, "humidity": 1},
		{"temperature": 0, "humidity": 1},
		{"temperature": 50, "humidity": 99},
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 0 || counts[2] != 1 {
		t.Errorf("batch counts = %v", counts)
	}
	st, err := c.Stats(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Published != 4 || st.Subscriptions != 1 {
		t.Errorf("stats = %+v", st)
	}

	if code := stop(); code != 0 {
		t.Errorf("daemon exit code = %d", code)
	}
}

// TestDaemonDefaults covers -defaults: the configured attribute may be
// omitted from publish frames, everything else stays mandatory.
func TestDaemonDefaults(t *testing.T) {
	addr, _, stop := startDaemon(t, "-defaults", "humidity=0")
	c, err := wire.Dial(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Subscribe("dry-heat", "profile(temperature >= 35; humidity <= 5)", 0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	matched, err := c.Publish(map[string]float64{"temperature": 40}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Errorf("matched = %d, want the humidity default 0 applied", matched)
	}
	if _, err := c.Publish(map[string]float64{"humidity": 10}, 5*time.Second); err == nil {
		t.Error("omitting an attribute without a default must still fail")
	}
	if code := stop(); code != 0 {
		t.Errorf("exit = %d", code)
	}
}

// TestDaemonShardsDefault covers -shards 0 (GOMAXPROCS) startup.
func TestDaemonShardsDefault(t *testing.T) {
	addr, stderr, stop := startDaemon(t, "-shards", "0")
	c, err := wire.Dial(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(5 * time.Second); err != nil {
		t.Error(err)
	}
	_ = c.Close()
	if code := stop(); code != 0 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "shards") {
		t.Errorf("startup log missing shard count: %q", stderr.String())
	}
}

// TestDaemonBadFlags covers every configuration error exit.
func TestDaemonBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"missing schema", []string{}, 2},
		{"bad schema", []string{"-schema", "x=banana[1,2]"}, 2},
		{"bad measure", []string{"-schema", "x=numeric[0,1]", "-measure", "bogus"}, 2},
		{"bad attrs", []string{"-schema", "x=numeric[0,1]", "-attrs", "A9"}, 2},
		{"bad search", []string{"-schema", "x=numeric[0,1]", "-search", "quantum"}, 2},
		{"bad shards", []string{"-schema", "x=numeric[0,1]", "-shards", "-3"}, 2},
		{"bad defaults syntax", []string{"-schema", "x=numeric[0,1]", "-defaults", "x"}, 2},
		{"bad defaults attr", []string{"-schema", "x=numeric[0,1]", "-defaults", "y=0"}, 2},
		{"bad defaults domain", []string{"-schema", "x=numeric[0,1]", "-defaults", "x=7"}, 2},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"bad addr", []string{"-schema", "x=numeric[0,1]", "-addr", "256.0.0.1:bogus"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			if code := run(tc.args, &stderr, nil); code != tc.want {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.want, stderr.String())
			}
		})
	}
}

func TestDaemonHelpExitsZero(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-h"}, &stderr, nil); code != 0 {
		t.Errorf("-h: exit %d (%s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-schema") {
		t.Errorf("usage missing: %q", stderr.String())
	}
}
