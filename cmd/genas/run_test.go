package main

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"

	"genas/internal/broker"
	"genas/internal/schema"
	"genas/internal/wire"
)

// startTestDaemon serves a broker over TCP for CLI tests and returns its
// address.
func startTestDaemon(t *testing.T, opts broker.Options) string {
	t.Helper()
	sch, err := schema.ParseSpec("temperature=numeric[-30,50]; humidity=numeric[0,100]")
	if err != nil {
		t.Fatal(err)
	}
	brk, err := broker.New(sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(brk, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
		brk.Close()
	})
	return ln.Addr().String()
}

// cli invokes run with captured io.
func cli(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestCLIPubSubStatsSchema(t *testing.T) {
	addr := startTestDaemon(t, broker.Options{Shards: 2})

	// Single publish.
	code, out, errOut := cli(t, "", "-addr", addr, "pub", "temperature=10; humidity=50")
	if code != 0 {
		t.Fatalf("pub: %d %s", code, errOut)
	}
	if !strings.Contains(out, "matched 0 profile(s)") {
		t.Errorf("pub output = %q", out)
	}

	// Batch publish from arguments.
	code, out, errOut = cli(t, "", "-addr", addr, "pub",
		"temperature=40; humidity=90", "temperature=-5; humidity=10")
	if code != 0 {
		t.Fatalf("batch pub: %d %s", code, errOut)
	}
	if !strings.Contains(out, "published 2 events") {
		t.Errorf("batch output = %q", out)
	}

	// Batch publish from stdin.
	stdin := "temperature=1; humidity=2\n\nevent(temperature=3; humidity=4)\n"
	code, out, errOut = cli(t, stdin, "-addr", addr, "pub", "-")
	if code != 0 {
		t.Fatalf("stdin pub: %d %s", code, errOut)
	}
	if !strings.Contains(out, "published 2 events") {
		t.Errorf("stdin batch output = %q", out)
	}

	// Stats reflect the five published events.
	code, out, errOut = cli(t, "", "-addr", addr, "stats")
	if code != 0 {
		t.Fatalf("stats: %d %s", code, errOut)
	}
	if !strings.Contains(out, "published: 5") {
		t.Errorf("stats output = %q", out)
	}

	// Schema and quench.
	code, out, _ = cli(t, "", "-addr", addr, "schema")
	if code != 0 || !strings.Contains(out, "temperature: numeric[-30,50]") {
		t.Errorf("schema: %d %q", code, out)
	}
	code, out, _ = cli(t, "", "-addr", addr, "quench", "temperature", "0", "10")
	if code != 0 || !strings.Contains(out, "quenched=true") {
		t.Errorf("quench: %d %q", code, out)
	}
}

func TestCLISubscribeAndListen(t *testing.T) {
	addr := startTestDaemon(t, broker.Options{})

	// A background publisher fires after the subscription is in place.
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		c, err := wire.Dial(addr, rpcTimeout)
		if err != nil {
			return
		}
		defer func() { _ = c.Close() }()
		for {
			profiles, err := c.Profiles(rpcTimeout)
			if err != nil {
				return
			}
			if len(profiles) > 0 {
				break
			}
		}
		_, _ = c.Publish(map[string]float64{"temperature": 45, "humidity": 80}, rpcTimeout)
	}()

	code, out, errOut := cli(t, "", "-addr", addr, "-wait", "3s", "sub", "hot", "profile(temperature >= 35)", "1.5")
	<-pubDone
	if code != 0 {
		t.Fatalf("sub: %d %s", code, errOut)
	}
	if !strings.Contains(out, "subscribed hot") {
		t.Errorf("sub output = %q", out)
	}
	if !strings.Contains(out, "notification #1 for hot") {
		t.Errorf("missing notification in %q", out)
	}
}

func TestCLIProfilesExportImport(t *testing.T) {
	addr := startTestDaemon(t, broker.Options{})
	// Subscribe on a throwaway connection that stays open via -wait 0? No:
	// use the wire client directly so the subscription persists for the
	// export.
	c, err := wire.Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Subscribe("hot", "profile(temperature >= 35)", 2, rpcTimeout); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := cli(t, "", "-addr", addr, "profiles")
	if code != 0 || !strings.Contains(out, "hot (priority 2)") {
		t.Fatalf("profiles: %d %q %s", code, out, errOut)
	}

	code, out, errOut = cli(t, "", "-addr", addr, "export")
	if code != 0 || !strings.Contains(out, "temperature >= 35") {
		t.Fatalf("export: %d %q %s", code, out, errOut)
	}

	envelope := strings.ReplaceAll(out, `"hot"`, `"hot2"`)
	code, out, errOut = cli(t, envelope, "-addr", addr, "-wait", "10ms", "import")
	if code != 0 || !strings.Contains(out, "imported 1 profiles") {
		t.Fatalf("import: %d %q %s", code, out, errOut)
	}
}

func TestCLIErrors(t *testing.T) {
	addr := startTestDaemon(t, broker.Options{})
	cases := []struct {
		name  string
		stdin string
		args  []string
		want  int
	}{
		{"no command", "", []string{"-addr", addr}, 2},
		{"unknown command", "", []string{"-addr", addr, "frobnicate"}, 2},
		{"bad flag", "", []string{"-bogus"}, 2},
		{"sub missing args", "", []string{"-addr", addr, "sub", "x"}, 2},
		{"sub bad priority", "", []string{"-addr", addr, "sub", "x", "profile(temperature >= 0)", "high"}, 2},
		{"sub bad profile", "", []string{"-addr", addr, "sub", "x", "profile(wat >= 0)"}, 1},
		{"pub missing args", "", []string{"-addr", addr, "pub"}, 2},
		{"pub bad event", "", []string{"-addr", addr, "pub", "temperature"}, 2},
		{"pub bad batch member", "", []string{"-addr", addr, "pub", "temperature=1; humidity=2", "nope"}, 2},
		{"pub empty stdin", "", []string{"-addr", addr, "pub", "-"}, 2},
		{"pub bad stdin line", "temperature=banana\n", []string{"-addr", addr, "pub", "-"}, 2},
		{"pub unknown attribute", "", []string{"-addr", addr, "pub", "pressure=1"}, 1},
		{"quench wrong arity", "", []string{"-addr", addr, "quench", "temperature", "1"}, 2},
		{"quench bad bounds", "", []string{"-addr", addr, "quench", "temperature", "a", "b"}, 2},
		{"quench unknown attr", "", []string{"-addr", addr, "quench", "pressure", "0", "1"}, 1},
		{"dial failure", "", []string{"-addr", "127.0.0.1:1", "stats"}, 1},
		{"import garbage", "{bad", []string{"-addr", addr, "import"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := cli(t, tc.stdin, tc.args...)
			if code != tc.want {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.want, errOut)
			}
		})
	}
}

func TestCLIHelpExitsZero(t *testing.T) {
	if code, _, errOut := cli(t, "", "-h"); code != 0 || !strings.Contains(errOut, "-addr") {
		t.Errorf("-h: exit %d, stderr %q", code, errOut)
	}
}

func TestCLIDashMixedWithOperands(t *testing.T) {
	addr := startTestDaemon(t, broker.Options{})
	code, _, errOut := cli(t, "", "-addr", addr, "pub", "temperature=1; humidity=2", "-")
	if code != 2 || !strings.Contains(errOut, "only pub operand") {
		t.Errorf("mixed '-' operand: exit %d, stderr %q", code, errOut)
	}
}
