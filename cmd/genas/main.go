// Command genas is the GENAS client: subscribe to profiles, publish events
// (singly or batched), query quenching and statistics against a running
// genasd.
//
// Usage:
//
//	genas -addr localhost:7452 sub 'alarm' 'profile(temperature >= 35)'
//	genas -addr localhost:7452 pub 'temperature=40; humidity=90; radiation=5'
//	genas -addr localhost:7452 pub 'temperature=40; …' 'temperature=41; …'   # one batch frame
//	genas -addr localhost:7452 pub -                                         # batch from stdin, one event per line
//	genas -addr localhost:7452 quench temperature 0 10
//	genas -addr localhost:7452 stats
//	genas -addr localhost:7452 schema
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"genas/internal/codec"
	"genas/internal/wire"
)

const rpcTimeout = 5 * time.Second

// flushEvery bounds how many events the CLI buffers before publishing a
// batch, keeping streaming memory O(batch). The wire client owns the
// protocol's frame-size cap and splits oversized frames itself, so this is
// purely a memory/progress bound, not a size model.
const flushEvery = 4096

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("genas", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr  = fs.String("addr", "localhost:7452", "daemon address")
		wait  = fs.Duration("wait", 0, "after subscribing, listen for notifications this long (0 = forever)")
		proto = fs.String("proto", "auto", "wire protocol: auto (negotiate), v1 (JSON lines) or v2 (require binary frames)")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	logger := log.New(stderr, "genas: ", 0)

	args := fs.Args()
	if len(args) == 0 {
		logger.Print("usage: genas [flags] sub|pub|quench|stats|schema …")
		return 2
	}

	var p wire.Proto
	switch *proto {
	case "auto":
		p = wire.ProtoAuto
	case "v1":
		p = wire.ProtoV1
	case "v2":
		p = wire.ProtoV2
	default:
		logger.Printf("bad -proto %q (want auto, v1 or v2)", *proto)
		return 2
	}

	c, err := wire.DialWith(*addr, wire.DialConfig{Timeout: rpcTimeout, Proto: p})
	if err != nil {
		logger.Print(err)
		return 1
	}
	defer func() { _ = c.Close() }()

	switch args[0] {
	case "sub":
		if len(args) < 3 {
			logger.Print("usage: genas sub <id> <profile-expression> [priority]")
			return 2
		}
		priority := 0.0
		if len(args) > 3 {
			priority, err = strconv.ParseFloat(args[3], 64)
			if err != nil {
				logger.Printf("bad priority: %v", err)
				return 2
			}
		}
		if err := c.Subscribe(args[1], args[2], priority, rpcTimeout); err != nil {
			logger.Print(err)
			return 1
		}
		fmt.Fprintf(stdout, "subscribed %s\n", args[1])
		return listen(c, *wait, stdout)

	case "pub":
		if len(args) < 2 {
			logger.Print("usage: genas pub 'attr=value; …' ['attr=value; …' …] | pub -")
			return 2
		}
		if len(args) == 2 && args[1] == "-" {
			return streamPublish(c, stdin, stdout, logger)
		}
		for _, a := range args[1:] {
			if a == "-" {
				logger.Print("'-' (read events from stdin) must be the only pub operand")
				return 2
			}
		}
		events, err := collectEvents(args[1:])
		if err != nil {
			logger.Print(err)
			return 2
		}
		if len(events) == 1 {
			matched, err := c.Publish(events[0], rpcTimeout)
			if err != nil {
				logger.Print(err)
				return 1
			}
			fmt.Fprintf(stdout, "matched %d profile(s)\n", matched)
			return 0
		}
		fb := &frameBatcher{c: c}
		for _, ev := range events {
			if err := fb.add(ev); err != nil {
				return fb.fail(logger, err)
			}
		}
		if err := fb.flush(); err != nil {
			return fb.fail(logger, err)
		}
		fmt.Fprintf(stdout, "published %d events, matched %d profile(s) total\n", fb.published, fb.total)
		return 0

	case "quench":
		if len(args) != 4 {
			logger.Print("usage: genas quench <attr> <lo> <hi>")
			return 2
		}
		lo, err1 := strconv.ParseFloat(args[2], 64)
		hi, err2 := strconv.ParseFloat(args[3], 64)
		if err1 != nil || err2 != nil {
			logger.Print("bad bounds")
			return 2
		}
		q, err := c.Quench(args[1], lo, hi, rpcTimeout)
		if err != nil {
			logger.Print(err)
			return 1
		}
		fmt.Fprintf(stdout, "quenched=%v\n", q)
		return 0

	case "stats":
		st, err := c.Stats(rpcTimeout)
		if err != nil {
			logger.Print(err)
			return 1
		}
		fmt.Fprintf(stdout, "subscriptions: %d\npublished: %d\ndelivered: %d\ndropped: %d\n",
			st.Subscriptions, st.Published, st.Delivered, st.Dropped)
		fmt.Fprintf(stdout, "filter events: %d\nfilter ops: %d\nmean ops/event: %.3f\n",
			st.FilterEvents, st.FilterOps, st.MeanOps)
		if st.Restructures > 0 {
			fmt.Fprintf(stdout, "adaptive restructures: %d\n", st.Restructures)
		}
		if st.Aggregated {
			fmt.Fprintf(stdout, "canonical nodes: %d\ncanonical roots: %d\nposet depth: %d\nprofiles/canonical: %.2f\n",
				st.CanonicalNodes, st.CanonicalRoots, st.PosetDepth, st.ProfilesPerCanonical)
		}
		if st.Node != "" {
			fmt.Fprintf(stdout, "federation node: %s\npeers: %d\nforwarded: %d\nrejected at links: %d\n",
				st.Node, st.Peers, st.Forwarded, st.Filtered)
			fmt.Fprintf(stdout, "v2 peers: %d\n", st.ProtoV2Peers)
		}
		if st.BytesPerEventWire > 0 {
			fmt.Fprintf(stdout, "wire bytes/event: %.1f\n", st.BytesPerEventWire)
		}
		if st.FramesPipelined > 0 {
			fmt.Fprintf(stdout, "frames pipelined: %d\n", st.FramesPipelined)
		}
		return 0

	case "schema":
		attrs, err := c.Schema(rpcTimeout)
		if err != nil {
			logger.Print(err)
			return 1
		}
		for _, a := range attrs {
			if len(a.Labels) > 0 {
				fmt.Fprintf(stdout, "%s: cat{%s}\n", a.Name, strings.Join(a.Labels, ","))
				continue
			}
			fmt.Fprintf(stdout, "%s: %s[%g,%g]\n", a.Name, a.Kind, a.Lo, a.Hi)
		}
		return 0

	case "profiles":
		profiles, err := c.Profiles(rpcTimeout)
		if err != nil {
			logger.Print(err)
			return 1
		}
		for _, p := range profiles {
			if p.Priority > 0 {
				fmt.Fprintf(stdout, "%s (priority %g): %s\n", p.ID, p.Priority, p.Expr)
				continue
			}
			fmt.Fprintf(stdout, "%s: %s\n", p.ID, p.Expr)
		}
		return 0

	case "export":
		// Write the daemon's schema and profile corpus as a codec envelope
		// to stdout.
		if err := exportEnvelope(c, stdout); err != nil {
			logger.Print(err)
			return 1
		}
		return 0

	case "import":
		// Read a codec envelope from stdin and subscribe every profile on
		// this connection (the subscriptions live as long as the process).
		n, err := importEnvelope(c, stdin)
		if err != nil {
			logger.Print(err)
			return 1
		}
		fmt.Fprintf(stdout, "imported %d profiles\n", n)
		return listen(c, *wait, stdout)

	default:
		logger.Printf("unknown command %q", args[0])
		return 2
	}
}

// collectEvents parses the pub operands into event payloads: each argument
// is one event.
func collectEvents(args []string) ([]map[string]float64, error) {
	events := make([]map[string]float64, len(args))
	for i, arg := range args {
		ev, err := parseEventArg(arg)
		if err != nil {
			return nil, err
		}
		events[i] = ev
	}
	return events, nil
}

// frameBatcher accumulates events and flushes a publish_batch every
// flushEvery events, so both pub modes (argv operands and stdin streaming)
// share one batching policy.
type frameBatcher struct {
	c         *wire.Client
	chunk     []map[string]float64
	published int
	total     int
}

// add queues one event, flushing first when the buffer is full.
func (fb *frameBatcher) add(ev map[string]float64) error {
	if len(fb.chunk) >= flushEvery {
		if err := fb.flush(); err != nil {
			return err
		}
	}
	fb.chunk = append(fb.chunk, ev)
	return nil
}

// flush publishes the pending chunk as one frame. On a frame error, counts
// the client reports as committed still accrue to published/total.
func (fb *frameBatcher) flush() error {
	if len(fb.chunk) == 0 {
		return nil
	}
	counts, err := fb.c.PublishBatch(fb.chunk, rpcTimeout)
	for _, n := range counts {
		fb.total += n
	}
	fb.published += len(counts)
	if err != nil {
		return err
	}
	fb.chunk = fb.chunk[:0]
	return nil
}

// fail reports a publish error plus how much of the batch is known to have
// landed. The failed frame itself may or may not have been committed (for
// example a response timeout after the server already processed it), so the
// count is a lower bound — stated as such, because a confident number would
// invite a retry that double-publishes.
func (fb *frameBatcher) fail(logger *log.Logger, err error) int {
	logger.Print(err)
	if fb.published > 0 {
		logger.Printf("at least %d events (matching %d profiles) were already published before the error; the failed frame may also have been committed server-side, so blindly retrying the same input can double-publish", fb.published, fb.total)
	} else {
		logger.Print("the failed frame may still have been committed server-side; check the daemon's stats before retrying")
	}
	return 1
}

// streamFlushInterval bounds how long a streamed event may sit buffered: a
// slow producer (a live pipeline emitting a few events per minute) must not
// wait for the count threshold or EOF before its events publish.
const streamFlushInterval = 250 * time.Millisecond

// streamPublish reads one event per line from stdin (empty lines skipped)
// and publishes them in publish_batch frames as the batch fills — or on an
// idle timer, so a live low-rate pipeline delivers promptly instead of
// buffering to EOF. Memory stays O(batch). A parse error aborts after
// reporting the line; frames already flushed stay published.
func streamPublish(c *wire.Client, stdin io.Reader, stdout io.Writer, logger *log.Logger) int {
	fb := &frameBatcher{c: c}

	type scanned struct {
		line string
		err  error
	}
	lines := make(chan scanned, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdin)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			lines <- scanned{line: sc.Text()}
		}
		if err := sc.Err(); err != nil {
			lines <- scanned{err: err}
		}
	}()

	ticker := time.NewTicker(streamFlushInterval)
	defer ticker.Stop()
	lineNo := 0
	for {
		select {
		case in, ok := <-lines:
			if !ok {
				if err := fb.flush(); err != nil {
					return fb.fail(logger, err)
				}
				if fb.published == 0 {
					logger.Print("no events on stdin")
					return 2
				}
				fmt.Fprintf(stdout, "published %d events, matched %d profile(s) total\n", fb.published, fb.total)
				return 0
			}
			if in.err != nil {
				return fb.fail(logger, in.err)
			}
			lineNo++
			line := strings.TrimSpace(in.line)
			if line == "" {
				continue
			}
			ev, err := parseEventArg(line)
			if err != nil {
				logger.Printf("line %d: %v", lineNo, err)
				if fb.published > 0 {
					logger.Printf("%d events were already published before the bad line", fb.published)
				}
				return 2
			}
			if err := fb.add(ev); err != nil {
				return fb.fail(logger, err)
			}
		case <-ticker.C:
			if err := fb.flush(); err != nil {
				return fb.fail(logger, err)
			}
		}
	}
}

// exportEnvelope writes the daemon's schema and profiles as a codec
// envelope.
func exportEnvelope(c *wire.Client, w io.Writer) error {
	attrs, err := c.Schema(rpcTimeout)
	if err != nil {
		return err
	}
	profiles, err := c.Profiles(rpcTimeout)
	if err != nil {
		return err
	}
	env := codec.Envelope{Version: codec.Version}
	for _, a := range attrs {
		env.Schema = append(env.Schema, codec.AttrDoc{
			Name: a.Name, Kind: a.Kind, Lo: a.Lo, Hi: a.Hi, Labels: a.Labels,
		})
	}
	for _, p := range profiles {
		env.Profiles = append(env.Profiles, codec.ProfileDoc{
			ID: p.ID, Expr: p.Expr, Priority: p.Priority,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false) // keep profile operators like >= readable
	return enc.Encode(env)
}

// importEnvelope subscribes every profile of a codec envelope on the
// current connection and returns the count.
func importEnvelope(c *wire.Client, r io.Reader) (int, error) {
	var env codec.Envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return 0, fmt.Errorf("parse envelope: %w", err)
	}
	if env.Version != codec.Version {
		return 0, fmt.Errorf("unsupported envelope version %d", env.Version)
	}
	for i, p := range env.Profiles {
		if err := c.Subscribe(p.ID, p.Expr, p.Priority, rpcTimeout); err != nil {
			return i, fmt.Errorf("profile %s: %w", p.ID, err)
		}
	}
	return len(env.Profiles), nil
}

// parseEventArg reads "attr=value; attr=value".
func parseEventArg(text string) (map[string]float64, error) {
	text = strings.TrimPrefix(strings.TrimSuffix(strings.TrimSpace(text), ")"), "event(")
	out := make(map[string]float64)
	for _, part := range strings.Split(text, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("missing '=' in %q", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(part[eq+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q", part)
		}
		out[strings.TrimSpace(part[:eq])] = v
	}
	return out, nil
}

// listen prints notifications until the timeout (0 = forever).
func listen(c *wire.Client, d time.Duration, stdout io.Writer) int {
	var timeout <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	for {
		select {
		case n, ok := <-c.Notifications():
			if !ok {
				return 0
			}
			// EventMap resolves the payload for either protocol: v1 carries
			// the attribute map, v2 a schema-order vector.
			ev := c.EventMap(n)
			parts := make([]string, 0, len(ev))
			for k, v := range ev {
				parts = append(parts, fmt.Sprintf("%s=%g", k, v))
			}
			fmt.Fprintf(stdout, "notification #%d for %s: %s\n", n.Seq, n.Profile, strings.Join(parts, " "))
		case <-timeout:
			return 0
		}
	}
}
