// Command genas is the GENAS client: subscribe to profiles, publish events,
// query quenching and statistics against a running genasd.
//
// Usage:
//
//	genas -addr localhost:7452 sub 'alarm' 'profile(temperature >= 35)'
//	genas -addr localhost:7452 pub 'temperature=40; humidity=90; radiation=5'
//	genas -addr localhost:7452 quench temperature 0 10
//	genas -addr localhost:7452 stats
//	genas -addr localhost:7452 schema
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"genas/internal/codec"
	"genas/internal/wire"
)

const rpcTimeout = 5 * time.Second

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr = flag.String("addr", "localhost:7452", "daemon address")
		wait = flag.Duration("wait", 0, "after subscribing, listen for notifications this long (0 = forever)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "genas: ", 0)

	args := flag.Args()
	if len(args) == 0 {
		logger.Print("usage: genas [flags] sub|pub|quench|stats|schema …")
		return 2
	}

	c, err := wire.Dial(*addr, rpcTimeout)
	if err != nil {
		logger.Print(err)
		return 1
	}
	defer func() { _ = c.Close() }()

	switch args[0] {
	case "sub":
		if len(args) < 3 {
			logger.Print("usage: genas sub <id> <profile-expression> [priority]")
			return 2
		}
		priority := 0.0
		if len(args) > 3 {
			priority, err = strconv.ParseFloat(args[3], 64)
			if err != nil {
				logger.Printf("bad priority: %v", err)
				return 2
			}
		}
		if err := c.Subscribe(args[1], args[2], priority, rpcTimeout); err != nil {
			logger.Print(err)
			return 1
		}
		fmt.Printf("subscribed %s\n", args[1])
		return listen(c, *wait)

	case "pub":
		if len(args) < 2 {
			logger.Print("usage: genas pub 'attr=value; attr=value; …'")
			return 2
		}
		ev, err := parseEventArg(args[1])
		if err != nil {
			logger.Print(err)
			return 2
		}
		matched, err := c.Publish(ev, rpcTimeout)
		if err != nil {
			logger.Print(err)
			return 1
		}
		fmt.Printf("matched %d profile(s)\n", matched)
		return 0

	case "quench":
		if len(args) != 4 {
			logger.Print("usage: genas quench <attr> <lo> <hi>")
			return 2
		}
		lo, err1 := strconv.ParseFloat(args[2], 64)
		hi, err2 := strconv.ParseFloat(args[3], 64)
		if err1 != nil || err2 != nil {
			logger.Print("bad bounds")
			return 2
		}
		q, err := c.Quench(args[1], lo, hi, rpcTimeout)
		if err != nil {
			logger.Print(err)
			return 1
		}
		fmt.Printf("quenched=%v\n", q)
		return 0

	case "stats":
		st, err := c.Stats(rpcTimeout)
		if err != nil {
			logger.Print(err)
			return 1
		}
		fmt.Printf("subscriptions: %d\npublished: %d\ndelivered: %d\ndropped: %d\n",
			st.Subscriptions, st.Published, st.Delivered, st.Dropped)
		fmt.Printf("filter events: %d\nfilter ops: %d\nmean ops/event: %.3f\n",
			st.FilterEvents, st.FilterOps, st.MeanOps)
		if st.Restructures > 0 {
			fmt.Printf("adaptive restructures: %d\n", st.Restructures)
		}
		return 0

	case "schema":
		attrs, err := c.Schema(rpcTimeout)
		if err != nil {
			logger.Print(err)
			return 1
		}
		for _, a := range attrs {
			if len(a.Labels) > 0 {
				fmt.Printf("%s: cat{%s}\n", a.Name, strings.Join(a.Labels, ","))
				continue
			}
			fmt.Printf("%s: %s[%g,%g]\n", a.Name, a.Kind, a.Lo, a.Hi)
		}
		return 0

	case "profiles":
		profiles, err := c.Profiles(rpcTimeout)
		if err != nil {
			logger.Print(err)
			return 1
		}
		for _, p := range profiles {
			if p.Priority > 0 {
				fmt.Printf("%s (priority %g): %s\n", p.ID, p.Priority, p.Expr)
				continue
			}
			fmt.Printf("%s: %s\n", p.ID, p.Expr)
		}
		return 0

	case "export":
		// Write the daemon's schema and profile corpus as a codec envelope
		// to stdout.
		if err := exportEnvelope(c, os.Stdout); err != nil {
			logger.Print(err)
			return 1
		}
		return 0

	case "import":
		// Read a codec envelope from stdin and subscribe every profile on
		// this connection (the subscriptions live as long as the process).
		n, err := importEnvelope(c, os.Stdin)
		if err != nil {
			logger.Print(err)
			return 1
		}
		fmt.Printf("imported %d profiles\n", n)
		return listen(c, *wait)

	default:
		logger.Printf("unknown command %q", args[0])
		return 2
	}
}

// exportEnvelope writes the daemon's schema and profiles as a codec
// envelope.
func exportEnvelope(c *wire.Client, w io.Writer) error {
	attrs, err := c.Schema(rpcTimeout)
	if err != nil {
		return err
	}
	profiles, err := c.Profiles(rpcTimeout)
	if err != nil {
		return err
	}
	env := codec.Envelope{Version: codec.Version}
	for _, a := range attrs {
		env.Schema = append(env.Schema, codec.AttrDoc{
			Name: a.Name, Kind: a.Kind, Lo: a.Lo, Hi: a.Hi, Labels: a.Labels,
		})
	}
	for _, p := range profiles {
		env.Profiles = append(env.Profiles, codec.ProfileDoc{
			ID: p.ID, Expr: p.Expr, Priority: p.Priority,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false) // keep profile operators like >= readable
	return enc.Encode(env)
}

// importEnvelope subscribes every profile of a codec envelope on the
// current connection and returns the count.
func importEnvelope(c *wire.Client, r io.Reader) (int, error) {
	var env codec.Envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return 0, fmt.Errorf("parse envelope: %w", err)
	}
	if env.Version != codec.Version {
		return 0, fmt.Errorf("unsupported envelope version %d", env.Version)
	}
	for i, p := range env.Profiles {
		if err := c.Subscribe(p.ID, p.Expr, p.Priority, rpcTimeout); err != nil {
			return i, fmt.Errorf("profile %s: %w", p.ID, err)
		}
	}
	return len(env.Profiles), nil
}

// parseEventArg reads "attr=value; attr=value".
func parseEventArg(text string) (map[string]float64, error) {
	text = strings.TrimPrefix(strings.TrimSuffix(strings.TrimSpace(text), ")"), "event(")
	out := make(map[string]float64)
	for _, part := range strings.Split(text, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("missing '=' in %q", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(part[eq+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q", part)
		}
		out[strings.TrimSpace(part[:eq])] = v
	}
	return out, nil
}

// listen prints notifications until the timeout (0 = forever).
func listen(c *wire.Client, d time.Duration) int {
	var timeout <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	for {
		select {
		case n, ok := <-c.Notifications():
			if !ok {
				return 0
			}
			parts := make([]string, 0, len(n.Event))
			for k, v := range n.Event {
				parts = append(parts, fmt.Sprintf("%s=%g", k, v))
			}
			fmt.Printf("notification #%d for %s: %s\n", n.Seq, n.Profile, strings.Join(parts, " "))
		case <-timeout:
			return 0
		}
	}
}
