package main

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"genas/internal/broker"
	"genas/internal/schema"
	"genas/internal/wire"
)

func TestParseEventArg(t *testing.T) {
	ev, err := parseEventArg("temperature=40; humidity=90.5")
	if err != nil {
		t.Fatal(err)
	}
	if ev["temperature"] != 40 || ev["humidity"] != 90.5 {
		t.Errorf("parsed = %v", ev)
	}
	// The paper's event() notation is accepted too.
	ev, err = parseEventArg("event(temperature=30; humidity=90)")
	if err != nil {
		t.Fatal(err)
	}
	if ev["temperature"] != 30 {
		t.Errorf("parsed = %v", ev)
	}
	for _, bad := range []string{"temperature", "temperature=hot"} {
		if _, err := parseEventArg(bad); err == nil {
			t.Errorf("parseEventArg(%q) must fail", bad)
		}
	}
	// Empty segments are tolerated.
	ev, err = parseEventArg("a=1;;b=2;")
	if err != nil || len(ev) != 2 {
		t.Errorf("parsed = %v, err %v", ev, err)
	}
}

func TestEnvelopeImportExportHelpers(t *testing.T) {
	// Round-trip through the wire against a local daemon.
	sch, err := schema.ParseSpec("temperature=numeric[-30,50]; humidity=numeric[0,100]")
	if err != nil {
		t.Fatal(err)
	}
	brk, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	srv := wire.NewServer(brk, nil)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, ln)
	}()
	defer func() { cancel(); srv.Close(); <-done }()

	c, err := wire.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Subscribe("hot", "profile(temperature >= 35)", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := exportEnvelope(c, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "temperature >= 35") {
		t.Errorf("export missing profile: %s", buf.String())
	}

	// Import the same envelope on a second connection: ids collide with the
	// first connection's subscription, so rewrite them first.
	doc := strings.ReplaceAll(buf.String(), `"hot"`, `"hot2"`)
	c2, err := wire.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c2.Close() }()
	n, err := importEnvelope(c2, strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("imported %d profiles", n)
	}
	profiles, err := c2.Profiles(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Errorf("daemon should hold 2 profiles, got %+v", profiles)
	}
	if _, err := importEnvelope(c2, strings.NewReader("{bad")); err == nil {
		t.Error("bad envelope must fail")
	}
	if _, err := importEnvelope(c2, strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("version mismatch must fail")
	}
}
