// Command genasvet runs the genas-specific static analysis suite
// (internal/lint) over the module: locksafe, hotpath, senterr, ctxleak,
// snapfreeze, lockorder, golife, and atomicsafe. It is the CI gate that
// keeps the repo's concurrency, allocation, and error-wrapping invariants
// mechanical instead of tribal.
//
// Usage:
//
//	go run ./cmd/genasvet [-run analyzer[,analyzer]] [-json] [-stale-allow=false] [-list] [packages]
//
// Packages default to ./... relative to the current directory. Findings
// print as file:line:col: analyzer: message with paths relative to the
// working directory; -json instead emits one JSON object per finding
// ({"file","line","analyzer","message","suppressed"}), including findings
// held back by //genas:allow directives so tooling can see what the
// suppressions cover. Stale-allow checking is on by default: an allow
// directive that suppresses nothing, or that names an unknown analyzer,
// is itself a finding. Allows for analyzers outside the -run selection
// are never counted stale; -stale-allow=false exists for partial
// *package* runs, where the cross-package facts behind a finding may
// live outside the analyzed set.
//
// The exit status is 1 when any unsuppressed diagnostic remains, 2 on
// usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"genas/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("genasvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runNames := fs.String("run", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding (includes suppressed findings)")
	staleAllow := fs.Bool("stale-allow", true, "report allow directives that suppress nothing")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: genasvet [-run analyzer[,analyzer]] [-json] [-stale-allow=false] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*runNames)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	opts := lint.Options{StaleAllow: *staleAllow, KeepSuppressed: *jsonOut}
	diags := lint.RunOpts(pkgs, analyzers, opts)

	wd, _ := os.Getwd()
	failing := 0
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		if !d.Suppressed {
			failing++
		}
		file := relPath(wd, d.Pos.Filename)
		if *jsonOut {
			enc.Encode(jsonDiag{
				File:       file,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
			continue
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if failing > 0 {
		fmt.Fprintf(stderr, "genasvet: %d finding(s)\n", failing)
		return 1
	}
	return 0
}

// relPath shortens an absolute diagnostic path to be relative to the
// working directory when that makes it shorter and keeps it inside the
// tree; anything else (other volumes, parent escapes) stays as-is.
func relPath(wd, path string) string {
	if wd == "" || !filepath.IsAbs(path) {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return path
	}
	return rel
}
