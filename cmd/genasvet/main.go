// Command genasvet runs the genas-specific static analysis suite
// (internal/lint) over the module: locksafe, hotpath, senterr, and
// ctxleak. It is the CI gate that keeps the repo's concurrency,
// allocation, and error-wrapping invariants mechanical instead of
// tribal.
//
// Usage:
//
//	go run ./cmd/genasvet [-run analyzer[,analyzer]] [-list] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// status is 1 when any diagnostic survives suppression, 2 on usage or
// load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"genas/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("genasvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runNames := fs.String("run", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: genasvet [-run analyzer[,analyzer]] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*runNames)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "genasvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
