package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestTreeIsClean is the acceptance gate: the full analyzer suite over the
// whole module must come back empty — every real finding fixed, every
// intentional one suppressed with a documented reason.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	t.Chdir("../..")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("genasvet ./... = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if got := stdout.String(); got != "" {
		t.Errorf("expected no diagnostics, got:\n%s", got)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("genasvet -list = %d, want 0", code)
	}
	for _, name := range []string{"locksafe", "hotpath", "senterr", "ctxleak", "snapfreeze", "lockorder", "golife", "atomicsafe"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// TestJSONOutput runs the full CLI pipeline against the self-contained
// module under testdata/jsonmod (one live finding, one suppressed) and
// compares the -json stream against the golden file. The golden covers
// the wire format end to end: field names, path relativization, and the
// suppressed findings that only -json surfaces.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	golden, err := os.ReadFile("testdata/jsonmod.golden")
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir("testdata/jsonmod")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "."}, &stdout, &stderr); code != 1 {
		t.Fatalf("genasvet -json . = %d, want 1 (one live finding)\nstderr:\n%s", code, stderr.String())
	}
	if got, want := stdout.String(), string(golden); got != want {
		t.Errorf("-json output mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr should count only unsuppressed findings, got: %s", stderr.String())
	}
}

// TestTextOutput checks that the default text mode drops suppressed
// findings and prints relative paths with the file:line:col: analyzer:
// message shape the CI problem matcher parses.
func TestTextOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	t.Chdir("testdata/jsonmod")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"."}, &stdout, &stderr); code != 1 {
		t.Fatalf("genasvet . = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	want := "jsonmod.go:13:9: hotpath: fmt.Sprintf allocates on the hot path\n"
	if got := stdout.String(); got != want {
		t.Errorf("text output = %q, want %q", got, want)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("genasvet -run nope = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr.String())
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("genasvet with bad flag = %d, want 2", code)
	}
}
