package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTreeIsClean is the acceptance gate: the full analyzer suite over the
// whole module must come back empty — every real finding fixed, every
// intentional one suppressed with a documented reason.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	t.Chdir("../..")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("genasvet ./... = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if got := stdout.String(); got != "" {
		t.Errorf("expected no diagnostics, got:\n%s", got)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("genasvet -list = %d, want 0", code)
	}
	for _, name := range []string{"locksafe", "hotpath", "senterr", "ctxleak"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("genasvet -run nope = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr.String())
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("genasvet with bad flag = %d, want 2", code)
	}
}
