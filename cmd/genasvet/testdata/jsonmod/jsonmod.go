// Package jsonmod is a minimal self-contained module the genasvet CLI
// tests run the real binary pipeline against: it produces exactly one
// unsuppressed finding and one suppressed finding at fixed positions, so
// the -json output can be compared against a golden file byte for byte.
package jsonmod

import "fmt"

// Hot allocates via fmt in a hot function: the unsuppressed finding.
//
//genas:hotpath
func Hot(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Cold allocates too, but carries a live allow: the suppressed finding.
//
//genas:hotpath
func Cold(n int) string {
	//genas:allow hotpath cold diagnostics path, measured off the publish loop
	return fmt.Sprint(n)
}
