module jsonmod

go 1.24
