package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// exec runs the CLI with captured output.
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestList prints every suite and scenario.
func TestList(t *testing.T) {
	code, out, _ := exec(t, "list")
	if code != 0 {
		t.Fatalf("list exited %d", code)
	}
	for _, want := range []string{"smoke", "full", "uniform-dense", "zipf-hot",
		"correlated-storm", "churn-heavy", "federated-3hop"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output misses %q", want)
		}
	}
}

// TestUsageAndBadArgs covers the dispatch edges.
func TestUsageAndBadArgs(t *testing.T) {
	if code, _, _ := exec(t); code != 2 {
		t.Error("no command should exit 2")
	}
	if code, out, _ := exec(t, "help"); code != 0 || !strings.Contains(out, "usage:") {
		t.Error("help should print usage and exit 0")
	}
	if code, _, _ := exec(t, "frobnicate"); code != 2 {
		t.Error("unknown command should exit 2")
	}
	if code, _, _ := exec(t, "run", "-suite", "no-such"); code != 2 {
		t.Error("unknown suite should exit 2")
	}
	if code, _, _ := exec(t, "run", "-badflag"); code != 2 {
		t.Error("bad flag should exit 2")
	}
	if code, _, _ := exec(t, "compare", "-old", "only.json"); code != 2 {
		t.Error("compare without -new should exit 2")
	}
	if code, _, _ := exec(t, "derate", "-in", "only.json"); code != 2 {
		t.Error("derate without -out should exit 2")
	}
	if code, _, _ := exec(t, "compare", "-old", "absent.json", "-new", "absent.json"); code != 1 {
		t.Error("compare of missing files should exit 1")
	}
	if code, _, _ := exec(t, "derate", "-in", "absent.json", "-out", "x.json"); code != 1 {
		t.Error("derate of a missing file should exit 1")
	}
}

// TestRunCompareGate is the acceptance path end to end: run the smoke suite
// (scaled down further for the test), self-compare cleanly, then inject a
// regression with derate and require the gate to fail.
func TestRunCompareGate(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "bench.json")

	code, out, errOut := exec(t, "run", "-suite", "smoke", "-short", "-out", report)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errOut)
	}
	if !strings.Contains(out, "report written") {
		t.Fatalf("run did not report its output file:\n%s", out)
	}
	for _, sc := range []string{"uniform-dense", "zipf-hot", "correlated-storm",
		"churn-heavy", "federated-3hop"} {
		if !strings.Contains(out, sc) {
			t.Errorf("smoke run skipped %s", sc)
		}
	}

	// A report gates cleanly against itself.
	if code, out, _ := exec(t, "compare", "-old", report, "-new", report); code != 0 ||
		!strings.Contains(out, "perf gate: OK") {
		t.Fatalf("self-compare failed (exit %d):\n%s", code, out)
	}

	// run -compare in one step.
	report2 := filepath.Join(dir, "bench2.json")
	if code, _, errOut := exec(t, "run", "-suite", "smoke", "-short", "-out", report2,
		"-compare", report, "-tol", "0.95"); code != 0 {
		t.Fatalf("run -compare exited %d: %s", code, errOut)
	}

	// An injected 50% regression must fail the 25% gate.
	degraded := filepath.Join(dir, "degraded.json")
	if code, _, _ := exec(t, "derate", "-in", report, "-out", degraded, "-factor", "0.5"); code != 0 {
		t.Fatal("derate failed")
	}
	code, _, errOut = exec(t, "compare", "-old", report, "-new", degraded, "-tol", "0.25")
	if code != 1 {
		t.Fatalf("gate accepted an injected regression (exit %d)", code)
	}
	if !strings.Contains(errOut, "perf gate: FAIL") {
		t.Errorf("gate failure not reported:\n%s", errOut)
	}
}
