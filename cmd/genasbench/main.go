// Command genasbench runs scenario-diverse load suites against the filtering
// stack and records machine-comparable JSON reports.
//
//	genasbench list
//	genasbench run -suite smoke -out BENCH_loadgen.json
//	genasbench run -suite full -short -compare BENCH_loadgen.json -tol 0.25
//	genasbench compare -old BENCH_loadgen.json -new BENCH_new.json -tol 0.25
//	genasbench derate -in BENCH_new.json -out BENCH_degraded.json -factor 0.5
//
// run executes a named suite (scenarios synthesized from the distribution
// catalog: uniform, Zipf-hot, correlated bursts, churn, a federated chain)
// and writes a report with throughput, p50/p99 publish latency, matches/sec
// and allocs per event. compare gates a new report against a baseline and
// exits non-zero when any baseline scenario lost more than the tolerated
// fraction of its throughput — the CI perf gate. derate scales a report's
// throughputs down, giving the gate a self-test fixture (an injected
// regression must fail). Reports compare meaningfully only against a
// baseline recorded on comparable hardware.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"genas/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommand; exit codes: 0 success, 1 regression or
// runtime failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "list":
		return cmdList(stdout)
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "derate":
		return cmdDerate(args[1:], stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "genasbench: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: genasbench <command> [flags]

commands:
  list      print the scenario catalog and suites
  run       run a suite and record a JSON report
            -suite smoke|full  -out FILE  [-short]  [-compare BASELINE -tol 0.25]
  compare   gate a new report against a baseline (exit 1 on regression)
            -old FILE  -new FILE  [-tol 0.25]
  derate    scale a report's throughputs down (gate self-test fixture)
            -in FILE  -out FILE  [-factor 0.5]
`)
}

// cmdList prints the catalog: suites first, then every scenario with its
// driver and full-suite sizes.
func cmdList(stdout io.Writer) int {
	fmt.Fprintln(stdout, "suites:")
	for _, s := range loadgen.SuiteNames() {
		scs, _ := loadgen.Suite(s, false)
		fmt.Fprintf(stdout, "  %-8s", s)
		for i, sc := range scs {
			if i > 0 {
				fmt.Fprint(stdout, ",")
			}
			fmt.Fprintf(stdout, " %s", sc.Name)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintln(stdout, "scenarios:")
	for _, n := range loadgen.ScenarioNames() {
		sc, _ := loadgen.ScenarioByName(n)
		fmt.Fprintf(stdout, "  %-18s driver=%-10s events=%-6d profiles=%d\n",
			sc.Name, sc.Driver, sc.Events, sc.Profiles)
	}
	return 0
}

// cmdRun executes a suite, writes the report and optionally gates it
// against a baseline in one step.
func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("genasbench run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suite   = fs.String("suite", "smoke", "suite to run (see genasbench list)")
		out     = fs.String("out", "BENCH_loadgen.json", "report output path")
		short   = fs.Bool("short", false, "scale scenario sizes down for fast runs")
		reps    = fs.Int("reps", 3, "repetitions per scenario (best throughput wins)")
		compare = fs.String("compare", "", "baseline report to gate against after the run")
		tol     = fs.Float64("tol", 0.25, "tolerated throughput drop fraction")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	scs, err := loadgen.Suite(*suite, *short)
	if err != nil {
		fmt.Fprintf(stderr, "genasbench: %v\n", err)
		return 2
	}
	results := make([]loadgen.Result, 0, len(scs))
	for _, sc := range scs {
		fmt.Fprintf(stdout, "running %-18s (driver=%s events=%d profiles=%d) ... ",
			sc.Name, sc.Driver, sc.Events, sc.Profiles)
		res, err := loadgen.RunBest(sc, *reps)
		if err != nil {
			fmt.Fprintln(stdout)
			fmt.Fprintf(stderr, "genasbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "%.0f events/s, p50 %.1fus, p99 %.1fus, %d matched\n",
			res.Measured.ThroughputEPS, res.Measured.P50Micros, res.Measured.P99Micros,
			res.Workload.MatchedTotal)
		results = append(results, *res)
	}
	report := loadgen.NewReport(*suite, results)
	if err := report.WriteFile(*out); err != nil {
		fmt.Fprintf(stderr, "genasbench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "report written to %s (%d scenarios)\n", *out, len(results))
	if *compare == "" {
		return 0
	}
	base, err := loadgen.ReadReport(*compare)
	if err != nil {
		fmt.Fprintf(stderr, "genasbench: %v\n", err)
		return 1
	}
	return gate(base, report, *tol, stdout, stderr)
}

// cmdCompare gates an already-recorded report against a baseline.
func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("genasbench compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		oldPath = fs.String("old", "", "baseline report")
		newPath = fs.String("new", "", "report under test")
		tol     = fs.Float64("tol", 0.25, "tolerated throughput drop fraction")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "genasbench compare: -old and -new are required")
		return 2
	}
	base, err := loadgen.ReadReport(*oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "genasbench: %v\n", err)
		return 1
	}
	cur, err := loadgen.ReadReport(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "genasbench: %v\n", err)
		return 1
	}
	return gate(base, cur, *tol, stdout, stderr)
}

// gate prints the verdict and maps regressions to exit code 1.
func gate(base, cur *loadgen.Report, tol float64, stdout, stderr io.Writer) int {
	if base.Host != cur.Host {
		fmt.Fprintf(stdout, "note: baseline recorded on %s/%s %d-cpu %s, this report on %s/%s %d-cpu %s — cross-host throughput is noisy\n",
			base.Host.GOOS, base.Host.GOARCH, base.Host.NumCPU, base.Host.GoVersion,
			cur.Host.GOOS, cur.Host.GOARCH, cur.Host.NumCPU, cur.Host.GoVersion)
	}
	regs := loadgen.Compare(base, cur, tol)
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "perf gate: OK (%d scenarios within %.0f%% of baseline)\n",
			len(base.Scenarios), tol*100)
		return 0
	}
	fmt.Fprintf(stderr, "perf gate: FAIL — %d regression(s) beyond the %.0f%% tolerance:\n", len(regs), tol*100)
	for _, g := range regs {
		fmt.Fprintf(stderr, "  %s\n", g)
	}
	return 1
}

// cmdDerate scales every throughput in a report down by factor, producing a
// known-bad report: the fixture CI uses to prove the gate actually fails.
func cmdDerate(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("genasbench derate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in     = fs.String("in", "", "input report")
		out    = fs.String("out", "", "output report")
		factor = fs.Float64("factor", 0.5, "throughput multiplier")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" || *out == "" {
		fmt.Fprintln(stderr, "genasbench derate: -in and -out are required")
		return 2
	}
	r, err := loadgen.ReadReport(*in)
	if err != nil {
		fmt.Fprintf(stderr, "genasbench: %v\n", err)
		return 1
	}
	for i := range r.Scenarios {
		r.Scenarios[i].Measured.ThroughputEPS *= *factor
		r.Scenarios[i].Measured.MatchesPerSec *= *factor
	}
	if err := r.WriteFile(*out); err != nil {
		fmt.Fprintf(stderr, "genasbench: %v\n", err)
		return 1
	}
	return 0
}
