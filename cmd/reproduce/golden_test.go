package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Regenerate the golden tables with:
//
//	go test ./cmd/reproduce -run TestGoldenFigures -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenFigs are the paper figures whose output is fully deterministic under
// a fixed seed (the TV scenario sweep prints wall-clock build times and is
// excluded).
var goldenFigs = []string{"3", "4a", "4b", "5a", "5b", "5c", "6a", "6b"}

// TestGoldenFigures pins the exact reproduction output of Figures 3–6: any
// change to the distribution catalog, the selectivity measures, the tree or
// the experiment harness that silently shifts the paper's numbers fails
// here.
func TestGoldenFigures(t *testing.T) {
	for _, fig := range goldenFigs {
		t.Run("fig"+fig, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run([]string{"-fig", fig, "-seed", "1"}, &out, &errOut); code != 0 {
				t.Fatalf("run exited %d: %s", code, errOut.String())
			}
			golden := filepath.Join("testdata", "fig"+fig+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("figure %s drifted from the recorded reproduction.\n--- got ---\n%s\n--- want ---\n%s\ndiff starts at byte %d",
					fig, clip(out.String()), clip(string(want)), firstDiff(out.Bytes(), want))
			}
		})
	}
}

// TestGoldenCSV pins the CSV emitter for one cheap figure.
func TestGoldenCSV(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-fig", "3", "-format", "csv"}, &out, &errOut); code != 0 {
		t.Fatalf("run exited %d: %s", code, errOut.String())
	}
	golden := filepath.Join("testdata", "fig3_csv.golden")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("CSV output drifted.\n--- got ---\n%s", clip(out.String()))
	}
}

// TestRunErrors covers the CLI error paths.
func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-fig", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown figure: exit %d", code)
	}
	if !strings.Contains(errOut.String(), "unknown figure") {
		t.Errorf("stderr = %q", errOut.String())
	}
	if code := run([]string{"-bogusflag"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}

func clip(s string) string {
	const max = 2000
	if len(s) > max {
		return s[:max] + "…"
	}
	return s
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestHelpExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h: exit %d (%s)", code, errOut.String())
	}
}
