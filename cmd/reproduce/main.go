// Command reproduce regenerates every table and figure of the paper's
// evaluation (§4.3) and prints them as aligned text tables.
//
// Usage:
//
//	reproduce -fig all          # every figure
//	reproduce -fig 4a           # one figure: 3 | 4a | 4b | 5a | 5b | 5c | 6a | 6b
//	reproduce -fig tv           # scenario sweep TV1–TV4
//	reproduce -seed 7           # change the workload seed
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"genas/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig    = fs.String("fig", "all", "figure to regenerate: 3|4a|4b|5a|5b|5c|6a|6b|dontcare|operators|search|tv|all")
		seed   = fs.Int64("seed", 1, "workload seed")
		format = fs.String("format", "text", "output format: text | csv")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	logger := log.New(stderr, "reproduce: ", 0)

	type job struct {
		name string
		run  func() error
	}
	emit := func(t experiments.Table) {
		if *format == "csv" {
			fmt.Fprint(stdout, t.CSV())
			return
		}
		fmt.Fprintln(stdout, t.Render())
	}
	table := func(f func(int64) (experiments.Table, error)) func() error {
		return func() error {
			t, err := f(*seed)
			if err != nil {
				return err
			}
			emit(t)
			return nil
		}
	}
	jobs := []job{
		{"3", func() error {
			t, err := experiments.Fig3(nil)
			if err != nil {
				return err
			}
			emit(t)
			return nil
		}},
		{"4a", table(experiments.Fig4a)},
		{"4b", table(experiments.Fig4b)},
		{"5a", table(experiments.Fig5a)},
		{"5b", table(experiments.Fig5b)},
		{"5c", table(experiments.Fig5c)},
		{"6a", table(experiments.Fig6a)},
		{"6b", table(experiments.Fig6b)},
		{"dontcare", table(experiments.DontCareSweep)},
		{"operators", table(experiments.OperatorSweep)},
		{"search", table(experiments.SearchSweep)},
		{"tv", func() error { return runScenarios(*seed, stdout) }},
	}

	ran := false
	for _, j := range jobs {
		if *fig != "all" && *fig != j.name {
			continue
		}
		ran = true
		if err := j.run(); err != nil {
			logger.Printf("figure %s: %v", j.name, err)
			return 1
		}
	}
	if !ran {
		logger.Printf("unknown figure %q", *fig)
		return 2
	}
	return 0
}

// runScenarios sweeps the four TV test scenarios on a representative
// configuration (peaked events against uniform profiles) across the
// orderings.
func runScenarios(seed int64, stdout io.Writer) error {
	fmt.Fprintln(stdout, "Test scenarios TV1–TV4 (events: 95% low peak, profiles: equal)")
	for _, vo := range []string{"natural", "event", "binary"} {
		fmt.Fprintf(stdout, "— value order: %s\n", vo)
		r1, err := experiments.TV1(3, 10000, "95% low", "equal", vo, seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "  "+r1.String())
		r2, err := experiments.TV2(3, 10000, "95% low", "equal", vo, seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "  "+r2.String())
		r3, err := experiments.TV3(2000, "95% low", "equal", vo, seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "  "+r3.String())
		r4, err := experiments.TV4(2000, "95% low", "equal", vo, seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "  "+r4.String())
	}
	return nil
}
