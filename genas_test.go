package genas

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func monitoringSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Attr("temperature", MustNumericDomain(-30, 50)),
		Attr("humidity", MustNumericDomain(0, 100)),
		Attr("radiation", MustNumericDomain(1, 100)),
	)
}

func TestServicePubSub(t *testing.T) {
	svc, err := NewService(monitoringSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sub, err := svc.Subscribe("alarm", "profile(temperature >= 35; humidity >= 90)")
	if err != nil {
		t.Fatal(err)
	}
	matched, err := svc.Publish(map[string]float64{"temperature": 40, "humidity": 95, "radiation": 2})
	if err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Fatalf("matched = %d", matched)
	}
	select {
	case n := <-sub.C():
		if n.Profile != "alarm" {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(time.Second):
		t.Fatal("no notification")
	}

	if err := svc.Unsubscribe("alarm"); err != nil {
		t.Fatal(err)
	}
	if _, open := <-sub.C(); open {
		t.Error("channel open after unsubscribe")
	}
}

func TestServicePublishValidation(t *testing.T) {
	svc, err := NewService(monitoringSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Publish(map[string]float64{"temperature": 40}); err == nil {
		t.Error("partial event must fail")
	}
	if _, err := svc.Publish(map[string]float64{"temperature": 40, "humidity": 95, "bogus": 1}); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestServiceParseHelpers(t *testing.T) {
	svc, err := NewService(monitoringSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ev, err := svc.ParseEvent("event(temperature=30; humidity=90; radiation=2)")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Vals[0] != 30 {
		t.Errorf("parsed event = %v", ev.Vals)
	}
	p, err := svc.ParseProfile("x", "profile(temperature >= 35)")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches([]float64{40, 0, 1}) {
		t.Error("parsed profile semantics wrong")
	}
	if _, err := svc.ParseProfile("y", "profile(!!)"); err == nil {
		t.Error("bad profile must fail")
	}
}

func TestServiceQuench(t *testing.T) {
	svc, err := NewService(monitoringSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Subscribe("hot", "profile(temperature >= 35)"); err != nil {
		t.Fatal(err)
	}
	q, err := svc.Quenched("temperature", -30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !q {
		t.Error("cold range must quench")
	}
	if _, err := svc.Quenched("bogus", 0, 1); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestServiceOptions(t *testing.T) {
	for _, opt := range []Option{
		WithAdaptive(),
		WithUserCentricAdaptive(),
		WithAdaptivePolicy(100, 0.2, true),
		WithBinarySearch(),
		WithValueMeasure("event"),
		WithAttrOrdering("A2"),
		WithSubscriptionBuffer(8),
	} {
		svc, err := NewService(monitoringSchema(t), opt)
		if err != nil {
			t.Fatalf("option failed: %v", err)
		}
		svc.Close()
	}
	if _, err := NewService(monitoringSchema(t), WithValueMeasure("sideways")); err == nil {
		t.Error("bad measure must fail")
	}
	if _, err := NewService(monitoringSchema(t), WithAttrOrdering("A9")); err == nil {
		t.Error("bad ordering must fail")
	}
	if _, err := NewService(monitoringSchema(t), WithSubscriptionBuffer(0)); err == nil {
		t.Error("zero buffer must fail")
	}
}

func TestAllValueMeasures(t *testing.T) {
	for _, name := range []string{
		"natural", "natural-desc", "event", "event-asc",
		"profile", "profile-asc", "event*profile", "event*profile-asc",
	} {
		svc, err := NewService(monitoringSchema(t), WithValueMeasure(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := svc.Subscribe("p", "profile(temperature >= 35)"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		matched, err := svc.Publish(map[string]float64{"temperature": 40, "humidity": 1, "radiation": 1})
		if err != nil || matched != 1 {
			t.Errorf("%s: matched=%d err=%v", name, matched, err)
		}
		svc.Close()
	}
}

func TestServiceAdaptiveRestructures(t *testing.T) {
	svc, err := NewService(monitoringSchema(t), WithAdaptivePolicy(200, 0.1, false))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		expr := fmt.Sprintf("profile(temperature >= %d)", 30+rng.Intn(20))
		if _, err := svc.Subscribe(fmt.Sprintf("p%d", i), expr); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1200; i++ {
		ev := map[string]float64{
			"temperature": 44 + 5*rng.Float64(),
			"humidity":    rng.Float64() * 100,
			"radiation":   1 + rng.Float64()*99,
		}
		if _, err := svc.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	if svc.Restructures() == 0 {
		t.Error("peaked stream must trigger adaptive restructure")
	}
	ops, err := svc.ExpectedOpsPerEvent()
	if err != nil || ops <= 0 {
		t.Errorf("expected ops = %g, err %v", ops, err)
	}
	st := svc.Stats()
	if st.Published != 1200 {
		t.Errorf("published = %d", st.Published)
	}
}

func TestServicePriority(t *testing.T) {
	svc, err := NewService(monitoringSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sub, err := svc.Subscribe("vip", "profile(temperature >= 40)", SubPriority(10))
	if err != nil {
		t.Fatal(err)
	}
	if w := sub.Profile().Weight(); w != 10 {
		t.Errorf("priority weight = %g", w)
	}
	matched, err := svc.Publish(map[string]float64{"temperature": 45, "humidity": 1, "radiation": 1})
	if err != nil || matched != 1 {
		t.Errorf("matched=%d err=%v", matched, err)
	}
}

func TestNetworkFacade(t *testing.T) {
	sch := monitoringSchema(t)
	nw := NewNetwork(sch, true)
	defer nw.Close()
	for _, n := range []string{"edge", "core"} {
		if err := nw.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Connect("edge", "core"); err != nil {
		t.Fatal(err)
	}
	p, err := NewService(sch) // reuse parser via a throwaway service
	if err != nil {
		t.Fatal(err)
	}
	prof, err := p.ParseProfile("hot", "profile(temperature >= 35)")
	p.Close()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := nw.Subscribe("core", prof)
	if err != nil {
		t.Fatal(err)
	}
	svcEv, err := NewService(sch)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := svcEv.ParseEvent("event(temperature=41; humidity=10; radiation=5)")
	svcEv.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Publish("edge", ev); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.C():
		if n.Profile != "hot" {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(time.Second):
		t.Fatal("no cross-broker notification")
	}
}

func TestWithEventDistributions(t *testing.T) {
	sch := monitoringSchema(t)
	svc, err := NewService(sch, WithEventDistributions(map[string]string{
		"temperature": "relgauss-low",
		"humidity":    "gauss",
		// radiation defaults to "equal"
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Subscribe("hot", "profile(temperature >= 45)"); err != nil {
		t.Fatal(err)
	}
	// Under the predefined relocated-low distribution almost every event is
	// rejected at the first comparison: the analytic expectation must be
	// close to 1.
	ops, err := svc.ExpectedOpsPerEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ops > 2 {
		t.Errorf("predefined-distribution service expects %.2f ops/event, want ≈1", ops)
	}
	// Matching semantics unchanged.
	matched, err := svc.Publish(map[string]float64{"temperature": 47, "humidity": 50, "radiation": 10})
	if err != nil || matched != 1 {
		t.Errorf("matched=%d err=%v", matched, err)
	}
	if _, err := NewService(sch, WithEventDistributions(map[string]string{"temperature": "bogus"})); err == nil {
		t.Error("unknown distribution name must fail")
	}
}

func TestServiceSubscribeGroup(t *testing.T) {
	svc, err := NewService(monitoringSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	g, err := svc.SubscribeGroup(16, map[string]string{
		"hot": "profile(temperature >= 35)",
		"wet": "profile(humidity >= 90)",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	matched, err := svc.Publish(map[string]float64{"temperature": 40, "humidity": 95, "radiation": 1})
	if err != nil || matched != 2 {
		t.Fatalf("matched=%d err=%v", matched, err)
	}
	seen := map[ProfileID]bool{}
	for i := 0; i < 2; i++ {
		select {
		case n := <-g.C():
			seen[n.Profile] = true
		case <-time.After(time.Second):
			t.Fatal("missing group notification")
		}
	}
	if !seen["hot"] || !seen["wet"] {
		t.Errorf("seen = %v", seen)
	}
	if _, err := svc.SubscribeGroup(8, map[string]string{"bad": "profile(!!)"}); err == nil {
		t.Error("bad expression must fail")
	}
}

// TestServiceSharded: the WithShards facade — sharded matching agrees with a
// single-shard service, the batch path reports per-event counts, and the
// analytic cost model still answers.
func TestServiceSharded(t *testing.T) {
	sch := monitoringSchema(t)
	single, err := NewService(sch)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded, err := NewService(sch, WithShards(4), WithAdaptivePolicy(64, 0.01, true))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	auto, err := NewService(sch, WithShards(0)) // GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	auto.Close()

	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 50; i++ {
		expr := fmt.Sprintf("profile(temperature >= %d; humidity <= %d)", rng.Intn(60)-30, rng.Intn(100))
		id := fmt.Sprintf("p%d", i)
		if _, err := single.Subscribe(id, expr); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Subscribe(id, expr); err != nil {
			t.Fatal(err)
		}
	}

	// Per-event parity.
	for i := 0; i < 200; i++ {
		vals := map[string]float64{
			"temperature": float64(rng.Intn(80) - 30),
			"humidity":    float64(rng.Intn(100)),
			"radiation":   float64(rng.Intn(99) + 1),
		}
		want, err := single.Publish(vals)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Publish(vals)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("event %d: sharded matched %d, single %d", i, got, want)
		}
	}

	// Batch parity: PublishBatch counts equal per-event publishing.
	evs := make([]Event, 64)
	var want []int
	for i := range evs {
		vals := map[string]float64{
			"temperature": float64(rng.Intn(80) - 30),
			"humidity":    float64(rng.Intn(100)),
			"radiation":   float64(rng.Intn(99) + 1),
		}
		ev, err := sharded.Event(vals)
		if err != nil {
			t.Fatal(err)
		}
		evs[i] = ev
		n, err := single.Publish(vals)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, n)
	}
	counts, err := sharded.PublishBatch(evs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i] != want[i] {
			t.Fatalf("batch event %d: %d vs %d", i, counts[i], want[i])
		}
	}

	// The adaptive loop restructured per shard and the cost model answers.
	if sharded.Restructures() == 0 {
		t.Error("sharded adaptive service never restructured")
	}
	ops, err := sharded.ExpectedOpsPerEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ops <= 0 {
		t.Errorf("expected ops = %v", ops)
	}
	if st := sharded.Stats(); st.Published != 200+64 || st.FilterEvents != 200+64 {
		t.Errorf("sharded stats = %+v", st)
	}

	// Event validation errors flow through the facade.
	if _, err := sharded.Event(map[string]float64{"temperature": 1}); err == nil {
		t.Error("partial event must fail")
	}
	if _, err := sharded.Event(map[string]float64{"bogus": 1}); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := sharded.PublishBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}
