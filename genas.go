// Package genas is a generic parameterized event notification service with
// distribution-based event filtering.
//
// GENAS reproduces the system of Hinze & Bittner, "Efficient
// Distribution-Based Event Filtering" (ICDCS Workshops 2002): a
// content-based publish/subscribe service whose profile-tree filter is
// restructured according to the observed event and profile distributions.
// Attributes with high selectivity move to the top tree levels (Measures
// A1–A3) and, inside every tree node, values are tested in order of
// descending probability (Measures V1–V3), so frequent events finish early
// and hopeless events are rejected as early as possible.
//
// # Quick start
//
//	sch := genas.MustSchema(
//		genas.Attr("temperature", genas.MustNumericDomain(-30, 50)),
//		genas.Attr("humidity", genas.MustNumericDomain(0, 100)),
//	)
//	svc, _ := genas.NewService(sch, genas.WithAdaptive())
//	defer svc.Close()
//
//	sub, _ := genas.NewProfile("heat-alarm").
//		Where("temperature", genas.GE(35)).
//		Subscribe(svc, genas.SubBuffer(256))
//	go func() {
//		for n := range sub.C() {
//			fmt.Println("notified:", n.Event.Render(sch))
//		}
//	}()
//	svc.PublishValues(41, 80)
//
// The profile language is the equivalent string front-end
// (svc.Subscribe("heat-alarm", "profile(temperature >= 35)")), and
// Publish(map[string]float64{...}) the convenient map front-end; the builder
// paths above are the allocation-free hot paths. See MIGRATION.md for the
// v0→v1 mapping and API.txt for the gated public surface.
//
// The packages under internal/ implement the machinery: the profile tree
// automaton, the selectivity measures and cost model, the distribution
// catalog, the adaptive component, the broker, the Siena-style overlay and
// the experiment harness regenerating every figure of the paper.
package genas

import (
	"context"
	"fmt"
	"time"

	"genas/internal/adaptive"
	"genas/internal/broker"
	"genas/internal/core"
	"genas/internal/dist"
	"genas/internal/event"
	"genas/internal/hook"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/tree"
)

// Re-exported types: the public names of the service's data vocabulary.
// These aliases are the supported v1 names; the packages they point into are
// internal and not importable by callers. Behavioral types (Subscription,
// Stats, Network) are concrete types of this package — see subscription.go,
// network.go and the Stats struct below.
type (
	// Schema is the ordered attribute set of a service instance.
	Schema = schema.Schema
	// Attribute is one named, typed attribute.
	Attribute = schema.Attribute
	// Domain is an attribute's value domain.
	Domain = schema.Domain
	// Interval is a possibly half-open value interval.
	Interval = schema.Interval
	// Profile is a conjunctive subscription.
	Profile = predicate.Profile
	// ProfileID identifies a profile.
	ProfileID = predicate.ID
	// Event is a primitive event.
	Event = event.Event
	// Notification is a delivered match.
	Notification = broker.Notification
)

// Domain constructors re-exported from the schema package.
var (
	// NewNumericDomain returns the continuous interval domain [lo, hi].
	NewNumericDomain = schema.NewNumericDomain
	// NewIntegerDomain returns the integer grid domain {lo, …, hi}.
	NewIntegerDomain = schema.NewIntegerDomain
	// NewCategoricalDomain returns a label-coded domain.
	NewCategoricalDomain = schema.NewCategoricalDomain
	// NewSchema builds a schema from attributes.
	NewSchema = schema.New
	// MustSchema is NewSchema that panics on error.
	MustSchema = schema.MustNew
	// ParseSchema reads a schema spec string, e.g.
	// "temperature=numeric[-30,50]; state=cat{ok,alarm}".
	ParseSchema = schema.ParseSpec
)

// Attr is a convenience constructor for schema attributes.
func Attr(name string, d Domain) Attribute { return Attribute{Name: name, Domain: d} }

// MustNumericDomain is NewNumericDomain that panics on error, for static
// schemas in examples and tests.
func MustNumericDomain(lo, hi float64) Domain {
	d, err := schema.NewNumericDomain(lo, hi)
	if err != nil {
		panic(err)
	}
	return d
}

// MustIntegerDomain is NewIntegerDomain that panics on error.
func MustIntegerDomain(lo, hi int) Domain {
	d, err := schema.NewIntegerDomain(lo, hi)
	if err != nil {
		panic(err)
	}
	return d
}

// Option configures a Service.
type Option func(*options) error

type options struct {
	broker         broker.Options
	eventDistNames map[string]string
	defaultVals    map[string]float64
}

// WithAdaptive enables the adaptive filter component with event-centric
// optimization: the service maintains an event history and restructures the
// profile tree when the observed distribution drifts.
func WithAdaptive() Option {
	return func(o *options) error {
		o.broker.Adaptive = true
		o.broker.Policy.Goal = adaptive.EventCentric
		return nil
	}
}

// WithUserCentricAdaptive enables adaptation optimizing for high-priority
// profiles (Measure V3): "faster notifications for profiles with high
// priority".
func WithUserCentricAdaptive() Option {
	return func(o *options) error {
		o.broker.Adaptive = true
		o.broker.Policy.Goal = adaptive.UserCentric
		return nil
	}
}

// WithAdaptivePolicy tunes the adaptation loop: window is the number of
// events between drift checks, threshold the total-variation distance that
// triggers a restructure.
func WithAdaptivePolicy(window int, threshold float64, reorderAttributes bool) Option {
	return func(o *options) error {
		o.broker.Adaptive = true
		o.broker.Policy.Window = window
		o.broker.Policy.Threshold = threshold
		o.broker.Policy.ReorderAttributes = reorderAttributes
		return nil
	}
}

// WithBinarySearch switches the within-node search to binary search (the
// baseline of Aguilera et al. / Gough & Smith).
func WithBinarySearch() Option {
	return WithSearch("binary")
}

// WithAggregation enables canonical subscription aggregation: structurally
// equivalent profiles intern to one canonical predicate node, the nodes form
// a covering poset, and the filter automaton indexes only the poset's roots.
// Matched canonical nodes are expanded back to concrete subscription ids at
// delivery time, so per-subscription semantics (priorities, buffers,
// counters) are untouched. Construction-time only, like the shard count.
func WithAggregation() Option {
	return func(o *options) error {
		o.broker.Engine.Aggregate = true
		return nil
	}
}

// WithSearch selects the within-node search strategy by name: "linear"
// (ordered scan with the lookup-table early-termination rule), "binary",
// "interpolation" or "hash" (the further strategies of the paper's outlook,
// §5).
func WithSearch(name string) Option {
	return func(o *options) error {
		switch name {
		case "linear":
			o.broker.Engine.Search = tree.SearchLinear
		case "binary":
			o.broker.Engine.Search = tree.SearchBinary
		case "interpolation":
			o.broker.Engine.Search = tree.SearchInterpolation
		case "hash":
			o.broker.Engine.Search = tree.SearchHash
		default:
			return fmt.Errorf("genas: unknown search strategy %q", name)
		}
		return nil
	}
}

// WithValueMeasure selects the static value ordering: "natural", "event"
// (V1), "profile" (V2) or "event*profile" (V3), each optionally suffixed
// "-asc" for ascending order.
func WithValueMeasure(name string) Option {
	return func(o *options) error {
		m, err := parseValueMeasure(name)
		if err != nil {
			return err
		}
		o.broker.Engine.ValueMeasure = m
		return nil
	}
}

// WithAttrOrdering selects the attribute ordering measure: "natural", "A1",
// "A2" or "A3".
func WithAttrOrdering(name string) Option {
	return func(o *options) error {
		switch name {
		case "natural":
			o.broker.Engine.AttrOrdering = core.AttrNatural
		case "A1":
			o.broker.Engine.AttrOrdering = core.AttrA1
		case "A2":
			o.broker.Engine.AttrOrdering = core.AttrA2
		case "A3":
			o.broker.Engine.AttrOrdering = core.AttrA3
		default:
			return fmt.Errorf("genas: unknown attribute ordering %q", name)
		}
		return nil
	}
}

// WithShards partitions the filter engine and the broker's delivery state
// into n shards: profiles hash across n independent profile trees, each with
// its own lock and selectivity state, and events are matched against all
// shards with a merge step. The match set is identical to the single-tree
// engine; sharding changes the concurrency layout — subscription churn and
// adaptive restructuring lock one shard at a time instead of stopping the
// world, and parallel publishers stop serializing on broker-wide state.
// n ≤ 0 selects GOMAXPROCS; n == 1 keeps the classic single-tree engine.
func WithShards(n int) Option {
	return func(o *options) error {
		o.broker.Shards = core.ResolveShards(n)
		return nil
	}
}

// WithSubscriptionBuffer sets the default notification buffer per
// subscription (overridable per subscription with SubBuffer).
func WithSubscriptionBuffer(n int) Option {
	return func(o *options) error {
		if n <= 0 {
			return ErrBadBuffer
		}
		o.broker.DefaultBuffer = n
		return nil
	}
}

// WithDefaults configures fallback values for event attributes a publisher
// may omit: an event missing a configured attribute is filled with its
// default instead of being rejected. Attributes without a default stay
// mandatory. This is the explicit, opt-in replacement for the silent
// zero-filling the wire protocol performed before publish events required
// every attribute.
func WithDefaults(byAttr map[string]float64) Option {
	return func(o *options) error {
		o.defaultVals = byAttr
		return nil
	}
}

// WithEventDistributions configures predefined per-attribute event
// distributions by catalog name ("equal", "gauss", "relgauss-low",
// "95% high", "d17", …). The paper's algorithm "can either work based on
// predefined distributions for the observed events, or it has to maintain a
// history of events" (§5); this option is the predefined mode, WithAdaptive
// the history mode. The option must be applied after the schema is known,
// so it is evaluated lazily inside NewService.
func WithEventDistributions(byAttr map[string]string) Option {
	return func(o *options) error {
		o.eventDistNames = byAttr
		return nil
	}
}

func parseValueMeasure(name string) (core.ValueMeasure, error) {
	switch name {
	case "natural":
		return core.ValueNatural, nil
	case "natural-desc":
		return core.ValueNaturalDesc, nil
	case "event":
		return core.ValueEvent, nil
	case "event-asc":
		return core.ValueEventAsc, nil
	case "profile":
		return core.ValueProfile, nil
	case "profile-asc":
		return core.ValueProfileAsc, nil
	case "event*profile":
		return core.ValueCombined, nil
	case "event*profile-asc":
		return core.ValueCombinedAsc, nil
	default:
		//genas:allow senterr construction-time config validation; misspelled option names are not a matchable runtime condition
		return 0, fmt.Errorf("genas: unknown value measure %q", name)
	}
}

// Service is the public face of one GENAS broker instance.
type Service struct {
	sch      *schema.Schema
	brk      *broker.Broker
	defaults *event.Defaults
}

// The wire server and the experiment harness live inside this module and
// need the underlying broker; external callers must not. The bridge is an
// internal package, so installing it here keeps the public surface sealed.
func init() {
	hook.BrokerOf = func(service any) *broker.Broker { return service.(*Service).brk }
	hook.DefaultsOf = func(service any) *event.Defaults { return service.(*Service).defaults }
}

// NewService creates a local event notification service over the schema.
func NewService(sch *Schema, opts ...Option) (*Service, error) {
	var o options
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.eventDistNames != nil {
		ds := make([]dist.Dist, sch.N())
		for i := 0; i < sch.N(); i++ {
			name, ok := o.eventDistNames[sch.At(i).Name]
			if !ok {
				name = "equal"
			}
			sh, err := dist.ByName(name)
			if err != nil {
				return nil, fmt.Errorf("genas: attribute %s: %w", sch.At(i).Name, err)
			}
			ds[i] = dist.New(sh, sch.At(i).Domain)
		}
		o.broker.Engine.EventDists = ds
		if o.broker.Engine.ValueMeasure == 0 || o.broker.Engine.ValueMeasure == core.ValueNatural {
			// Predefined distributions imply the distribution-aware
			// ordering unless the caller chose a measure explicitly.
			o.broker.Engine.ValueMeasure = core.ValueEvent
		}
		if o.broker.Engine.AttrOrdering == 0 || o.broker.Engine.AttrOrdering == core.AttrNatural {
			o.broker.Engine.AttrOrdering = core.AttrA2
		}
	}
	b, err := broker.New(sch, o.broker)
	if err != nil {
		return nil, err
	}
	svc := &Service{sch: sch, brk: b}
	if o.defaultVals != nil {
		d, err := event.NewDefaults(sch, o.defaultVals)
		if err != nil {
			b.Close()
			return nil, err
		}
		svc.defaults = d
	}
	return svc, nil
}

// Schema returns the service schema.
func (s *Service) Schema() *Schema { return s.sch }

// Subscribe parses a profile-language expression and registers it:
//
//	svc.Subscribe("alarm", "profile(temperature >= 35; humidity >= 90)",
//		genas.SubBuffer(256), genas.SubPriority(2))
//
// The profile language is one of two equivalent front-ends; see NewProfile
// for the typed builder.
func (s *Service) Subscribe(id, profileExpr string, opts ...SubOption) (*Subscription, error) {
	p, err := predicate.Parse(s.sch, predicate.ID(id), profileExpr)
	if err != nil {
		return nil, err
	}
	return s.SubscribeProfile(p, opts...)
}

// SubscribeProfile registers an already-built profile (from NewProfile's
// builder or ParseProfile).
func (s *Service) SubscribeProfile(p *Profile, opts ...SubOption) (*Subscription, error) {
	return s.subscribeWith(p, opts, nil)
}

// subscribeWith is the shared registration path behind Service and
// Federation subscriptions. stop overrides the unsubscribe hook (nil keeps
// the plain broker unsubscribe); Federation uses it to withdraw the route
// from its peers.
func (s *Service) subscribeWith(p *Profile, opts []SubOption, stop func(predicate.ID) error) (*Subscription, error) {
	var o subOptions
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.priority != 0 {
		// Register a copy rather than mutating the caller's profile: the
		// same *Profile may be shared with (or already live in) another
		// service whose engine reads Priority during restructuring. The
		// predicate slice is immutable after construction, so a shallow
		// copy suffices.
		clone := *p
		clone.Priority = o.priority
		p = &clone
	}
	sub, err := s.brk.SubscribeWith(p, o.broker)
	if err != nil {
		return nil, err
	}
	if stop == nil {
		stop = s.brk.Unsubscribe
	}
	id := p.ID
	return newSubscription(sub, func() error { return stop(id) }, &o), nil
}

// Unsubscribe removes a subscription.
func (s *Service) Unsubscribe(id string) error {
	return s.brk.Unsubscribe(predicate.ID(id))
}

// Event builds a validated event from attribute name → value. Every schema
// attribute must be present unless WithDefaults covers the omission.
func (s *Service) Event(values map[string]float64) (Event, error) {
	return event.FromMapWith(s.sch, values, s.defaults)
}

// Publish posts an event given as attribute name → value and returns the
// number of matched profiles. The map is convenient but allocates; use
// PublishValues or an EventBuilder (Service.NewEvent) on hot paths.
func (s *Service) Publish(values map[string]float64) (int, error) {
	ev, err := s.Event(values)
	if err != nil {
		return 0, err
	}
	return s.brk.Publish(ev)
}

// PublishCtx is Publish with a cancellation context: it refuses to start on
// a done context, and delivery blocked on a SubBlocking subscriber aborts
// (counting a drop) when the context is canceled.
func (s *Service) PublishCtx(ctx context.Context, values map[string]float64) (int, error) {
	ev, err := s.Event(values)
	if err != nil {
		return 0, err
	}
	return s.brk.PublishCtx(ctx, ev)
}

// PublishValues posts one event given positionally in schema order — the
// zero-allocation publish path: no map is built, the slice is only read
// during matching, and the event value materializes only when at least one
// profile matched. WithDefaults does not apply (every value is present by
// construction).
//
//genas:hotpath
func (s *Service) PublishValues(vals ...float64) (int, error) {
	if err := s.validateVals(vals); err != nil {
		return 0, err
	}
	return s.brk.PublishValues(vals)
}

// PublishValuesCtx is PublishValues with a cancellation context (see
// PublishCtx).
//
//genas:hotpath
func (s *Service) PublishValuesCtx(ctx context.Context, vals ...float64) (int, error) {
	if err := s.validateVals(vals); err != nil {
		return 0, err
	}
	return s.brk.PublishValuesCtx(ctx, vals)
}

//genas:hotpath
func (s *Service) validateVals(vals []float64) error {
	if len(vals) != s.sch.N() {
		//genas:allow hotpath cold arity-error branch; the steady-state event passes validation without allocating
		return fmt.Errorf("%w: got %d values for %d attributes", event.ErrArity, len(vals), s.sch.N())
	}
	for i := range vals {
		if err := s.sch.Validate(i, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// PublishEvent posts a prebuilt event.
func (s *Service) PublishEvent(ev Event) (int, error) { return s.brk.Publish(ev) }

// PublishBatch posts a slice of prebuilt events as one batch: the events are
// filtered concurrently against a single corpus snapshot, sequence numbers
// are assigned contiguously in slice order, and notifications are delivered
// in event order. It returns the per-event match counts. Batching amortizes
// lock acquisition and tree-root dispatch across the slice, so it is the
// preferred ingestion path for high-rate publishers.
func (s *Service) PublishBatch(evs []Event) ([]int, error) {
	return s.brk.PublishBatch(evs)
}

// PublishBatchCtx is PublishBatch with a cancellation context (see
// PublishCtx). Events already matched stay matched — the batch is not
// transactional.
func (s *Service) PublishBatchCtx(ctx context.Context, evs []Event) ([]int, error) {
	return s.brk.PublishBatchCtx(ctx, evs)
}

// ParseEvent reads the paper's event notation ("event(temperature=30; …)").
func (s *Service) ParseEvent(text string) (Event, error) { return event.Parse(s.sch, text) }

// ParseProfile reads the profile language without subscribing.
func (s *Service) ParseProfile(id, text string) (*Profile, error) {
	return predicate.Parse(s.sch, predicate.ID(id), text)
}

// Quenched reports whether events with attribute attr inside [lo, hi] are
// guaranteed to match nothing, so providers may suppress them at the source
// (Elvin-style quenching).
func (s *Service) Quenched(attr string, lo, hi float64) (bool, error) {
	i, err := s.sch.Index(attr)
	if err != nil {
		return false, err
	}
	return s.brk.Quenched(i, schema.Closed(lo, hi)), nil
}

// Stats is the service counter snapshot.
type Stats struct {
	// Subscriptions is the number of live subscriptions.
	Subscriptions int
	// Published counts posted events, Delivered notifications that reached a
	// subscriber buffer, Dropped notifications discarded for slow consumers.
	Published, Delivered, Dropped uint64
	// FilterEvents and FilterOps carry the engine's operation accounting
	// (the paper's comparisons-per-event metric); MeanOps is their ratio.
	FilterEvents, FilterOps uint64
	MeanOps                 float64
	// Restructures counts adaptive tree restructures (0 without
	// WithAdaptive).
	Restructures int
	// Aggregated reports whether canonical subscription aggregation is on
	// (WithAggregation). The remaining fields are zero when it is off.
	Aggregated bool
	// CanonicalNodes is the number of distinct canonical predicates the
	// subscriptions intern to; CanonicalRoots of those are uncovered and
	// indexed by the automaton.
	CanonicalNodes, CanonicalRoots int
	// PosetDepth is the longest covering chain among canonical nodes.
	PosetDepth int
	// ProfilesPerCanonical is Subscriptions / CanonicalNodes (0 when empty):
	// the structural sharing factor aggregation achieves.
	ProfilesPerCanonical float64
}

// Stats returns the current counters.
func (s *Service) Stats() Stats {
	bs := s.brk.Stats()
	return Stats{
		Subscriptions:        bs.Subscriptions,
		Published:            bs.Published,
		Delivered:            bs.Delivered,
		Dropped:              bs.Dropped,
		FilterEvents:         bs.FilterEvents,
		FilterOps:            bs.FilterOps,
		MeanOps:              bs.MeanOps,
		Restructures:         s.Restructures(),
		Aggregated:           bs.Aggregation.Enabled,
		CanonicalNodes:       bs.Aggregation.Nodes,
		CanonicalRoots:       bs.Aggregation.Roots,
		PosetDepth:           bs.Aggregation.MaxDepth,
		ProfilesPerCanonical: bs.Aggregation.Ratio(),
	}
}

// Restructures reports how many adaptive restructures have happened (0
// without WithAdaptive).
func (s *Service) Restructures() int {
	if a := s.brk.Adaptor(); a != nil {
		return a.Restructures()
	}
	return 0
}

// ExpectedOpsPerEvent evaluates the analytic cost model (Eq. 2 of the
// paper) under the service's current event distribution estimate.
func (s *Service) ExpectedOpsPerEvent() (float64, error) {
	a, err := s.brk.Engine().Analyze()
	if err != nil {
		return 0, err
	}
	return a.TotalOps, nil
}

// Close shuts the service down; all subscription channels are closed.
func (s *Service) Close() { s.brk.Close() }

// Now returns the current time; exposed so examples produce deterministic
// output under `go test` by overriding it.
var Now = time.Now

// Group is a set of subscriptions sharing one ordered notification channel.
type Group = broker.Group

// SubscribeGroup registers several profiles (id → profile-language
// expression) that deliver over a single ordered channel: notifications of
// one published event arrive contiguously and in publish order.
// Registration is atomic — on any failure no profile remains subscribed.
func (s *Service) SubscribeGroup(buffer int, primitives map[string]string) (*Group, error) {
	profiles := make([]*Profile, 0, len(primitives))
	for id, expr := range primitives {
		p, err := s.ParseProfile(id, expr)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	return s.brk.SubscribeGroup(buffer, profiles...)
}
