package genas

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func alarmService(t *testing.T, opts ...Option) *Service {
	t.Helper()
	svc, err := NewService(monitoringSchema(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func TestSubscriptionNext(t *testing.T) {
	svc := alarmService(t)
	sub, err := svc.Subscribe("hot", "profile(temperature >= 35)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PublishValues(40, 1, 1); err != nil {
		t.Fatal(err)
	}
	n, err := sub.Next(t.Context())
	if err != nil || n.Profile != "hot" {
		t.Fatalf("next = %+v, %v", n, err)
	}

	// Canceled context interrupts an idle wait.
	ctx, cancel := context.WithTimeout(t.Context(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("idle Next: %v", err)
	}

	// A closed subscription reports ErrClosed.
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(t.Context()); !errors.Is(err, ErrClosed) {
		t.Errorf("Next after close: %v", err)
	}
	if err := sub.Close(); err != nil {
		t.Errorf("second Close must be a no-op: %v", err)
	}
}

func TestSubHandler(t *testing.T) {
	svc := alarmService(t)
	var got atomic.Int64
	sub, err := svc.Subscribe("hot", "profile(temperature >= 35)",
		SubHandler(func(n Notification) {
			if n.Profile == "hot" {
				got.Add(1)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if sub.C() != nil {
		t.Error("handler-driven subscription must not expose its channel")
	}
	if _, err := sub.Next(t.Context()); err == nil {
		t.Error("Next on a handler-driven subscription must fail")
	}
	for i := 0; i < 10; i++ {
		if _, err := svc.PublishValues(40, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 10 {
		t.Errorf("handler saw %d of 10 notifications", got.Load())
	}
}

func TestSubDropOldest(t *testing.T) {
	svc := alarmService(t)
	sub, err := svc.Subscribe("hot", "profile(temperature >= 35)",
		SubBuffer(2), SubDropOldest())
	if err != nil {
		t.Fatal(err)
	}
	// Publish 5 matching events without reading: the buffer keeps the two
	// freshest, the three oldest are evicted.
	for i := 0; i < 5; i++ {
		if _, err := svc.PublishValues(35+float64(i), 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	first, err := sub.Next(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	second, err := sub.Next(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if first.Event.Vals[0] != 38 || second.Event.Vals[0] != 39 {
		t.Errorf("buffer kept %g, %g; want the freshest 38, 39",
			first.Event.Vals[0], second.Event.Vals[0])
	}
	if sub.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3 evictions", sub.Dropped())
	}
	if sub.Delivered() != 5 {
		t.Errorf("delivered = %d, want 5", sub.Delivered())
	}
}

func TestSubBlockingBackpressure(t *testing.T) {
	svc := alarmService(t)
	sub, err := svc.Subscribe("hot", "profile(temperature >= 35)",
		SubBuffer(1), SubBlocking())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PublishValues(40, 1, 1); err != nil {
		t.Fatal(err) // fills the buffer
	}
	published := make(chan error, 1)
	go func() {
		_, err := svc.PublishValues(41, 1, 1)
		published <- err
	}()
	select {
	case err := <-published:
		t.Fatalf("second publish must block on the full buffer (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Draining one notification releases the blocked publisher.
	if _, err := sub.Next(t.Context()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-published:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("publisher still blocked after drain")
	}
	if sub.Dropped() != 0 {
		t.Errorf("dropped = %d", sub.Dropped())
	}
}

func TestSubBlockingPublishCtxCancel(t *testing.T) {
	svc := alarmService(t)
	sub, err := svc.Subscribe("hot", "profile(temperature >= 35)",
		SubBuffer(1), SubBlocking())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PublishValues(40, 1, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(t.Context())
	published := make(chan int, 1)
	go func() {
		matched, err := svc.PublishValuesCtx(ctx, 41, 1, 1)
		if err != nil {
			t.Error(err) // matching succeeded; only delivery was canceled
		}
		published <- matched
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case matched := <-published:
		if matched != 1 {
			t.Errorf("matched = %d", matched)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled context did not release the blocked publisher")
	}
	if sub.Dropped() != 1 {
		t.Errorf("dropped = %d, want the canceled delivery counted", sub.Dropped())
	}
}

func TestSubBlockingUnsubscribeReleases(t *testing.T) {
	svc := alarmService(t)
	sub, err := svc.Subscribe("hot", "profile(temperature >= 35)",
		SubBuffer(1), SubBlocking())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PublishValues(40, 1, 1); err != nil {
		t.Fatal(err)
	}
	published := make(chan struct{})
	go func() {
		defer close(published)
		if _, err := svc.PublishValues(41, 1, 1); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-published:
	case <-time.After(2 * time.Second):
		t.Fatal("unsubscribe did not release the blocked publisher")
	}
}

func TestPublishCtxDoneContext(t *testing.T) {
	svc := alarmService(t)
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if _, err := svc.PublishCtx(ctx, map[string]float64{"temperature": 1, "humidity": 1, "radiation": 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("PublishCtx on done context: %v", err)
	}
	ev, err := svc.Event(map[string]float64{"temperature": 1, "humidity": 1, "radiation": 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PublishBatchCtx(ctx, []Event{ev}); !errors.Is(err, context.Canceled) {
		t.Errorf("PublishBatchCtx on done context: %v", err)
	}
	if _, err := svc.PublishValuesCtx(ctx, 1, 1, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("PublishValuesCtx on done context: %v", err)
	}
}

// TestSubBlockingDoesNotWedgeRegistration: a publisher stalled on one slow
// SubBlocking subscriber must not stall unrelated unsubscribes, subscribes,
// or deliveries to other subscribers on the same delivery shard.
func TestSubBlockingDoesNotWedgeRegistration(t *testing.T) {
	svc := alarmService(t)
	other, err := svc.Subscribe("other", "profile(temperature >= 35)")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := svc.Subscribe("slow", "profile(temperature >= 35)",
		SubBuffer(1), SubBlocking())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PublishValues(40, 1, 1); err != nil {
		t.Fatal(err) // fills slow's buffer
	}
	publisherStalled := make(chan struct{})
	go func() {
		defer close(publisherStalled)
		if _, err := svc.PublishValues(41, 1, 1); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(20 * time.Millisecond)

	// Registration operations on the same shard must complete while the
	// publisher is stalled on "slow".
	done := make(chan error, 3)
	go func() { done <- other.Close() }()
	go func() {
		_, err := svc.Subscribe("late", "profile(humidity >= 90)")
		done <- err
	}()
	go func() {
		_, err := svc.PublishValues(-20, 95, 1) // matches only "late"-style profiles
		done <- err
	}()
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("registration/delivery wedged behind a blocked SubBlocking publisher")
		}
	}

	// Draining releases the stalled publisher.
	if _, err := slow.Next(t.Context()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-publisherStalled:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher still blocked after drain")
	}
}

func TestSentinelErrors(t *testing.T) {
	svc := alarmService(t)
	if _, err := NewService(monitoringSchema(t), WithSubscriptionBuffer(0)); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("WithSubscriptionBuffer(0): %v", err)
	}
	if _, err := svc.Subscribe("x", "profile(temperature >= 0)", SubBuffer(-1)); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("SubBuffer(-1): %v", err)
	}
	if _, err := svc.Subscribe("dup", "profile(temperature >= 0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Subscribe("dup", "profile(humidity >= 0)"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate id: %v", err)
	}
	if _, err := svc.Subscribe("y", "profile(bogus >= 0)"); !errors.Is(err, ErrUnknownAttribute) {
		t.Errorf("unknown attribute: %v", err)
	}
	if _, err := svc.Publish(map[string]float64{"bogus": 1}); !errors.Is(err, ErrUnknownAttribute) {
		t.Errorf("publish unknown attribute: %v", err)
	}
	if _, err := svc.PublishValues(999, 1, 1); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("out-of-domain value: %v", err)
	}
	if err := svc.Unsubscribe("never-subscribed"); !errors.Is(err, ErrUnknownID) {
		t.Errorf("unknown unsubscribe: %v", err)
	}
	closed := alarmService(t)
	sub, err := closed.Subscribe("s", "profile(temperature >= 0)")
	if err != nil {
		t.Fatal(err)
	}
	closed.Close()
	if _, err := closed.PublishValues(1, 1, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close: %v", err)
	}
	if _, err := closed.Subscribe("z", "profile(temperature >= 0)"); !errors.Is(err, ErrClosed) {
		t.Errorf("subscribe after close: %v", err)
	}
	if err := sub.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("subscription close after service close: %v", err)
	}
}
