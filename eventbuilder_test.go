package genas

import (
	"errors"
	"testing"
	"time"
)

func TestEventBuilderPaths(t *testing.T) {
	svc := alarmService(t)
	sub, err := svc.Subscribe("hot", "profile(temperature >= 35)")
	if err != nil {
		t.Fatal(err)
	}

	// Named assembly, zero-map publish.
	eb := svc.NewEvent()
	matched, err := eb.Set("temperature", 40).Set("humidity", 50).Set("radiation", 2).Publish()
	if err != nil || matched != 1 {
		t.Fatalf("matched=%d err=%v", matched, err)
	}
	n, err := sub.Next(t.Context())
	if err != nil || n.Event.Vals[0] != 40 {
		t.Fatalf("notification = %+v, %v", n, err)
	}

	// The builder reset itself: the next event starts blank.
	if _, err := eb.Set("temperature", 10).Publish(); err == nil {
		t.Fatal("incomplete event after reset must fail")
	}

	// Positional assembly.
	if matched, err := eb.Values(36, 1, 1).Publish(); err != nil || matched != 1 {
		t.Fatalf("values path: matched=%d err=%v", matched, err)
	}
	if _, err := sub.Next(t.Context()); err != nil {
		t.Fatal(err)
	}

	// Timestamped events keep their occurrence time through delivery.
	at := time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)
	if matched, err := eb.Values(37, 1, 1).At(at).Publish(); err != nil || matched != 1 {
		t.Fatalf("timestamped: matched=%d err=%v", matched, err)
	}
	n, err = sub.Next(t.Context())
	if err != nil || !n.Event.Time.Equal(at) {
		t.Fatalf("delivered time = %v, %v", n.Event.Time, err)
	}

	// Errors stick until publish and reset with it.
	if _, err := eb.Set("bogus", 1).Set("temperature", 40).Publish(); !errors.Is(err, ErrUnknownAttribute) {
		t.Errorf("unknown attribute: %v", err)
	}
	if _, err := eb.Values(1, 2).Publish(); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := eb.Values(999, 1, 1).Publish(); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("out-of-domain: %v", err)
	}

	// Event() yields an owned value without resetting the builder.
	ev, err := eb.Values(38, 2, 3).Event()
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := eb.Event()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Vals[0] != 38 || ev2.Vals[0] != 38 {
		t.Errorf("events = %v, %v", ev.Vals, ev2.Vals)
	}
	ev.Vals[0] = 0
	if ev2.Vals[0] != 38 {
		t.Error("Event() must return owned value slices")
	}
}

func TestEventBuilderUnbound(t *testing.T) {
	sch := builderSchema(t)
	eb := NewEvent(sch)
	ev, err := eb.Set("temperature", 1).Set("humidity", 2).Set("count", 3).SetLabel("severity", "mid").Event()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Vals[3] != 1 {
		t.Errorf("severity code = %g, want 1 (mid)", ev.Vals[3])
	}
	if _, err := eb.Publish(); err == nil {
		t.Error("publish on an unbound builder must fail")
	}
	eb.Reset()
	if _, err := eb.SetLabel("severity", "nope").Event(); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("unknown label: %v", err)
	}
	eb.Reset()
	if _, err := eb.SetLabel("temperature", "mid").Event(); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("label on numeric: %v", err)
	}
}

func TestWithDefaults(t *testing.T) {
	svc := alarmService(t, WithDefaults(map[string]float64{"radiation": 1, "humidity": 0}))
	sub, err := svc.Subscribe("hot", "profile(temperature >= 35; radiation <= 5)")
	if err != nil {
		t.Fatal(err)
	}

	// Map path: omitted attributes fall back to their defaults.
	matched, err := svc.Publish(map[string]float64{"temperature": 40})
	if err != nil || matched != 1 {
		t.Fatalf("matched=%d err=%v", matched, err)
	}
	n, err := sub.Next(t.Context())
	if err != nil || n.Event.Vals[1] != 0 || n.Event.Vals[2] != 1 {
		t.Fatalf("defaults not applied: %+v, %v", n.Event.Vals, err)
	}

	// Builder path: same fallback.
	if matched, err := svc.NewEvent().Set("temperature", 41).Publish(); err != nil || matched != 1 {
		t.Fatalf("builder defaults: matched=%d err=%v", matched, err)
	}

	// Explicit values still win over defaults.
	if matched, err := svc.Publish(map[string]float64{"temperature": 40, "radiation": 50}); err != nil || matched != 0 {
		t.Fatalf("explicit value must override default: matched=%d err=%v", matched, err)
	}

	// A service without defaults still requires every attribute.
	strict := alarmService(t)
	if _, err := strict.Publish(map[string]float64{"temperature": 40}); err == nil {
		t.Error("omission without defaults must fail")
	}

	// Defaults are validated against the domain at construction.
	if _, err := NewService(monitoringSchema(t), WithDefaults(map[string]float64{"radiation": 0})); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("out-of-domain default: %v", err) // radiation domain is [1,100]
	}
	if _, err := NewService(monitoringSchema(t), WithDefaults(map[string]float64{"bogus": 1})); !errors.Is(err, ErrUnknownAttribute) {
		t.Errorf("unknown default attribute: %v", err)
	}
}

// TestPublishValuesParity: the zero-alloc path and the map path agree on
// matching and deliver equal notifications.
func TestPublishValuesParity(t *testing.T) {
	a := alarmService(t)
	b := alarmService(t)
	for _, svc := range []*Service{a, b} {
		if _, err := svc.Subscribe("hot", "profile(temperature >= 35; humidity >= 90)"); err != nil {
			t.Fatal(err)
		}
	}
	cases := [][3]float64{{40, 95, 1}, {40, 10, 1}, {-5, 95, 50}, {35, 90, 100}}
	for _, c := range cases {
		want, err := a.Publish(map[string]float64{"temperature": c[0], "humidity": c[1], "radiation": c[2]})
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.PublishValues(c[0], c[1], c[2])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("PublishValues(%v) = %d, map path %d", c, got, want)
		}
	}
	as, bs := a.Stats(), b.Stats()
	if as.Published != bs.Published || as.Delivered != bs.Delivered {
		t.Errorf("stats diverge: %+v vs %+v", as, bs)
	}
}
